"""The pattern structure ``P(W, n, alpha, m, <beta_1..beta_n>)``.

A *pattern* is the periodic computational unit of the paper (Section 2.3):

* it carries ``W`` total units of work;
* it is split into ``n`` **segments** of relative sizes
  ``alpha = [alpha_1..alpha_n]`` (``sum alpha_i = 1``); each segment ends
  with a guaranteed verification followed by a memory checkpoint;
* segment ``i`` is split into ``m_i`` **chunks** of relative sizes
  ``beta_i = [beta_{i,1}..beta_{i,m_i}]`` (``sum_j beta_{i,j} = 1``);
  chunks are separated by partial verifications;
* the pattern ends with a guaranteed verification, a memory checkpoint and
  a disk checkpoint, so no error propagates to the next pattern.

:class:`Pattern` stores this parameterisation, validates it, and *resolves*
it into a flat action schedule (work chunk / partial verification /
guaranteed verification / memory checkpoint / disk checkpoint) consumed by
the Monte-Carlo simulator and the live application executor.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

_REL_TOL = 1e-9


class ActionType(enum.Enum):
    """The atomic actions a pattern schedule is made of."""

    #: Execute a work chunk (duration = chunk length, subject to errors).
    WORK = "work"
    #: Partial verification: detects a pending silent error w.p. ``r``.
    PARTIAL_VERIFY = "partial-verify"
    #: Guaranteed verification: detects every pending silent error.
    GUARANTEED_VERIFY = "guaranteed-verify"
    #: Save an in-memory checkpoint (validated by the preceding verification).
    MEMORY_CHECKPOINT = "memory-checkpoint"
    #: Save a disk checkpoint (always immediately after a memory checkpoint).
    DISK_CHECKPOINT = "disk-checkpoint"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Action:
    """One step of a resolved pattern schedule.

    Attributes
    ----------
    type:
        The action type.
    duration:
        Error-free duration of the action in seconds (for WORK actions,
        the chunk length ``w_{i,j}``; for the others, the platform cost).
    segment:
        0-based index of the segment this action belongs to.
    chunk:
        0-based chunk index within the segment for WORK /
        PARTIAL_VERIFY actions, else ``-1``.
    """

    type: ActionType
    duration: float
    segment: int
    chunk: int = -1

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"action duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Segment:
    """One segment of a pattern: ``m`` chunks ending in V* + memory ckpt.

    Attributes
    ----------
    index:
        0-based position of the segment inside the pattern.
    work:
        Absolute work amount ``w_i = alpha_i * W`` (seconds at unit speed).
    chunk_fractions:
        Relative chunk sizes ``beta_i`` (sums to 1).
    """

    index: int
    work: float
    chunk_fractions: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"segment work must be >= 0, got {self.work}")
        if not self.chunk_fractions:
            raise ValueError("a segment needs at least one chunk")
        if any(b <= 0 for b in self.chunk_fractions):
            raise ValueError(
                f"chunk fractions must be positive, got {self.chunk_fractions}"
            )
        total = math.fsum(self.chunk_fractions)
        if not math.isclose(total, 1.0, rel_tol=_REL_TOL, abs_tol=_REL_TOL):
            raise ValueError(
                f"chunk fractions must sum to 1, got {total!r} "
                f"for {self.chunk_fractions}"
            )

    @property
    def num_chunks(self) -> int:
        """Number of chunks ``m_i`` in this segment."""
        return len(self.chunk_fractions)

    @property
    def chunk_lengths(self) -> Tuple[float, ...]:
        """Absolute chunk lengths ``w_{i,j} = beta_{i,j} * w_i``."""
        return tuple(b * self.work for b in self.chunk_fractions)


@dataclass(frozen=True)
class Pattern:
    """A fully parameterised pattern ``P(W, n, alpha, m, <beta_i>)``.

    Use :mod:`repro.core.builders` for the six canonical families; this
    class accepts any valid shape.

    Parameters
    ----------
    W:
        Total work in the pattern (seconds at unit speed).
    alpha:
        Relative segment sizes, ``sum = 1``.  ``n = len(alpha)``.
    betas:
        One tuple of relative chunk sizes per segment, each summing to 1.
        ``m_i = len(betas[i])``.
    """

    W: float
    alpha: Tuple[float, ...]
    betas: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if self.W <= 0:
            raise ValueError(f"pattern work W must be positive, got {self.W}")
        if not self.alpha:
            raise ValueError("a pattern needs at least one segment")
        if len(self.alpha) != len(self.betas):
            raise ValueError(
                f"alpha has {len(self.alpha)} segments but betas has "
                f"{len(self.betas)}"
            )
        if min(self.alpha) <= 0:
            raise ValueError(f"segment fractions must be positive, got {self.alpha}")
        total = math.fsum(self.alpha)
        if not math.isclose(total, 1.0, rel_tol=_REL_TOL, abs_tol=_REL_TOL):
            raise ValueError(f"segment fractions must sum to 1, got {total!r}")
        # Normalise to tuples so the dataclass is hashable/immutable even
        # when constructed with lists.
        object.__setattr__(self, "alpha", tuple(float(a) for a in self.alpha))
        object.__setattr__(
            self, "betas", tuple(tuple(float(b) for b in bs) for bs in self.betas)
        )
        # Validate each beta (the checks Segment construction applies,
        # inlined: pattern optimisation builds thousands of candidate
        # shapes, and per-shape Segment objects dominated its cost).
        for bs in self.betas:
            if not bs:
                raise ValueError("a segment needs at least one chunk")
            if min(bs) <= 0:
                raise ValueError(
                    f"chunk fractions must be positive, got {bs}"
                )
            total_b = math.fsum(bs)
            if not math.isclose(
                total_b, 1.0, rel_tol=_REL_TOL, abs_tol=_REL_TOL
            ):
                raise ValueError(
                    f"chunk fractions must sum to 1, got {total_b!r} "
                    f"for {bs}"
                )

    # -- structure accessors -------------------------------------------------
    @property
    def n(self) -> int:
        """Number of segments (= number of memory checkpoints inside)."""
        return len(self.alpha)

    @property
    def m(self) -> Tuple[int, ...]:
        """Chunks per segment ``(m_1, .., m_n)``."""
        return tuple(len(bs) for bs in self.betas)

    @property
    def total_chunks(self) -> int:
        """Total number of chunks across all segments."""
        return sum(self.m)

    @property
    def num_partial_verifications(self) -> int:
        """Partial verifications in the pattern: ``sum_i (m_i - 1)``.

        The last chunk of every segment ends with a *guaranteed*
        verification instead.
        """
        return sum(mi - 1 for mi in self.m)

    @property
    def num_guaranteed_verifications(self) -> int:
        """Guaranteed verifications: one per segment."""
        return self.n

    @property
    def num_memory_checkpoints(self) -> int:
        """Memory checkpoints: one per segment (the last precedes the disk one)."""
        return self.n

    @property
    def num_disk_checkpoints(self) -> int:
        """Disk checkpoints: always exactly one, at the end of the pattern."""
        return 1

    def segments(self) -> List[Segment]:
        """The resolved segments with absolute work amounts."""
        return [
            Segment(index=i, work=a * self.W, chunk_fractions=bs)
            for i, (a, bs) in enumerate(zip(self.alpha, self.betas))
        ]

    def segment_works(self) -> Tuple[float, ...]:
        """Absolute segment lengths ``w_i = alpha_i * W``."""
        return tuple(a * self.W for a in self.alpha)

    def chunk_lengths(self) -> List[Tuple[float, ...]]:
        """Absolute chunk lengths per segment."""
        return [seg.chunk_lengths for seg in self.segments()]

    # -- schedule resolution ---------------------------------------------------
    def schedule(
        self,
        *,
        V: float,
        V_star: float,
        C_M: float,
        C_D: float,
    ) -> List[Action]:
        """Resolve the pattern into its flat action schedule.

        The schedule is the in-order list of actions of one error-free
        traversal: for each segment, its chunks separated by partial
        verifications, then a guaranteed verification and a memory
        checkpoint; the final segment's memory checkpoint is followed by
        the disk checkpoint.

        Parameters
        ----------
        V, V_star, C_M, C_D:
            Platform costs of partial verification, guaranteed
            verification, memory checkpoint and disk checkpoint.
        """
        actions: List[Action] = []
        for seg in self.segments():
            lengths = seg.chunk_lengths
            for j, w in enumerate(lengths):
                actions.append(
                    Action(ActionType.WORK, w, segment=seg.index, chunk=j)
                )
                if j < len(lengths) - 1:
                    actions.append(
                        Action(
                            ActionType.PARTIAL_VERIFY,
                            V,
                            segment=seg.index,
                            chunk=j,
                        )
                    )
            actions.append(
                Action(ActionType.GUARANTEED_VERIFY, V_star, segment=seg.index)
            )
            actions.append(
                Action(ActionType.MEMORY_CHECKPOINT, C_M, segment=seg.index)
            )
        actions.append(
            Action(ActionType.DISK_CHECKPOINT, C_D, segment=self.n - 1)
        )
        return actions

    def error_free_time(
        self, *, V: float, V_star: float, C_M: float, C_D: float
    ) -> float:
        """Duration of one error-free traversal of the pattern.

        ``W + sum_i (m_i - 1) V + n (V* + C_M) + C_D``.
        """
        return (
            self.W
            + self.num_partial_verifications * V
            + self.n * (V_star + C_M)
            + C_D
        )

    def rescaled(self, W: float) -> "Pattern":
        """Copy of this pattern with a different total work ``W``."""
        return Pattern(W=W, alpha=self.alpha, betas=self.betas)


def pattern_signature(pattern: Pattern) -> str:
    """Short human-readable signature, e.g. ``P(W=3600, n=2, m=[3, 3])``."""
    return (
        f"P(W={pattern.W:g}, n={pattern.n}, "
        f"m={list(pattern.m)})"
    )
