"""Classical baselines: Young's and Daly's checkpointing intervals.

The paper's Theorem 1 generalises the classical single-error-source
results; this module implements those baselines explicitly so the
reductions can be tested and benchmarked:

* **Young (1974)**: first-order optimal checkpoint interval for fail-stop
  errors only, ``W* = sqrt(2 C mu)`` with ``mu = 1/lambda_f``.
* **Daly (2006)**: higher-order estimate including the recovery cost and
  finite-MTBF corrections.
* **Silent-only limit**: with verification+memory checkpoint only,
  ``W* = sqrt((V* + C_M)/lambda_s)`` (remark after Theorem 1).

All are expressed in this library's conventions (rates per second, costs
in seconds, unit-speed work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.platforms.platform import Platform


def young_period(C: float, lambda_f: float) -> float:
    """Young's first-order optimal interval ``sqrt(2 C / lambda_f)``.

    Parameters
    ----------
    C:
        Checkpoint cost (seconds).
    lambda_f:
        Fail-stop error rate (1/s).
    """
    if C < 0:
        raise ValueError(f"checkpoint cost must be >= 0, got {C}")
    if lambda_f <= 0:
        raise ValueError(f"need a positive fail-stop rate, got {lambda_f}")
    return math.sqrt(2.0 * C / lambda_f)


def young_overhead(C: float, lambda_f: float) -> float:
    """First-order overhead at Young's interval: ``sqrt(2 C lambda_f)``."""
    return 2.0 * C / young_period(C, lambda_f)


def daly_period(C: float, lambda_f: float) -> float:
    """Daly's higher-order optimum for the restart-dump interval.

    Daly (FGCS 2006): for ``C < 2 mu``::

        W* = sqrt(2 C mu) * [1 + (1/3) sqrt(C / (2 mu)) + (1/9) (C / (2 mu))] - C

    and ``W* = mu`` otherwise (checkpointing constantly).  The returned
    value is the *compute* segment length between checkpoints.
    """
    if C < 0:
        raise ValueError(f"checkpoint cost must be >= 0, got {C}")
    if lambda_f <= 0:
        raise ValueError(f"need a positive fail-stop rate, got {lambda_f}")
    mu = 1.0 / lambda_f
    if C >= 2.0 * mu:
        return mu
    x = C / (2.0 * mu)
    return math.sqrt(2.0 * C * mu) * (
        1.0 + math.sqrt(x) / 3.0 + x / 9.0
    ) - C


def silent_only_period(V_star: float, C_M: float, lambda_s: float) -> float:
    """Optimal interval with silent errors only (remark after Theorem 1).

    One verification + memory checkpoint per period:
    ``W* = sqrt((V* + C_M) / lambda_s)``.
    """
    if V_star < 0 or C_M < 0:
        raise ValueError("costs must be >= 0")
    if lambda_s <= 0:
        raise ValueError(f"need a positive silent rate, got {lambda_s}")
    return math.sqrt((V_star + C_M) / lambda_s)


def silent_only_overhead(V_star: float, C_M: float, lambda_s: float) -> float:
    """First-order overhead at the silent-only optimum:
    ``2 sqrt(lambda_s (V* + C_M))``."""
    return 2.0 * math.sqrt(lambda_s * (V_star + C_M))


@dataclass(frozen=True)
class BaselineComparison:
    """The paper's PD optimum next to the classical baselines.

    Attributes
    ----------
    W_pd, H_pd:
        Theorem-1 optimal period/overhead (both error sources).
    W_young:
        Young's interval treating *all* errors as fail-stop with the
        combined checkpoint cost (the naive deployment of the classical
        formula on a two-source platform).
    W_daly:
        Daly's higher-order interval under the same naive reading.
    H_young_deployed:
        First-order overhead actually paid (per the two-source model)
        when the pattern length is set to ``W_young`` -- quantifies the
        cost of ignoring silent errors when sizing the period.
    """

    W_pd: float
    H_pd: float
    W_young: float
    W_daly: float
    H_young_deployed: float

    @property
    def young_penalty(self) -> float:
        """Relative extra overhead from using Young's interval: >= 0."""
        return self.H_young_deployed / self.H_pd - 1.0


def compare_with_classical(platform: Platform) -> BaselineComparison:
    """Quantify the two-source optimum against the classical formulas.

    Young/Daly are given the full end-of-pattern cost ``V* + C_M + C_D``
    and the fail-stop rate only (their model is crash-only); the deployed
    overhead of Young's interval is then evaluated under the true
    two-source first-order model ``H(W) = o_ef/W + o_rw W``.
    """
    from repro.core.builders import PatternKind
    from repro.core.firstorder import decompose_overhead
    from repro.core.formulas import optimal_pattern
    from repro.core.builders import pattern_pd

    if platform.lambda_f <= 0:
        raise ValueError("classical baselines need a fail-stop rate")
    C_total = platform.V_star + platform.C_M + platform.C_D
    opt = optimal_pattern(PatternKind.PD, platform)
    W_young = young_period(C_total, platform.lambda_f)
    W_daly = daly_period(C_total, platform.lambda_f)
    decomp = decompose_overhead(pattern_pd(1.0), platform)
    return BaselineComparison(
        W_pd=opt.W_star,
        H_pd=opt.H_star,
        W_young=W_young,
        W_daly=W_daly,
        H_young_deployed=decomp.overhead_at(W_young),
    )
