"""First-order overhead decomposition ``H = o_ef/W + o_rw * W + O(lambda)``.

Section 3.2 of the paper: for any pattern, the expected overhead splits
into an **error-free overhead** ``o_ef`` (time spent on verifications and
checkpoints per pattern, independent of W) and a **re-executed-work
overhead** ``o_rw`` (fraction of work re-executed because of errors,
proportional to W).  Balancing the two terms gives

    W* = sqrt(o_ef / o_rw)       and       H* = 2 sqrt(o_ef * o_rw).

This module computes ``(o_ef, o_rw)`` for *arbitrary* pattern shapes
(any ``n``, ``m_i``, ``alpha``, ``beta_i``) using Proposition 4's general
expression, and therefore covers every family in Table 1 as a special
case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.matrices import quadratic_form
from repro.core.pattern import Pattern
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class OverheadDecomposition:
    """The pair ``(o_ef, o_rw)`` plus derived optimal period and overhead.

    Attributes
    ----------
    o_ef:
        Error-free overhead: resilience time per pattern (seconds).
    o_rw:
        Re-executed-work overhead: expected re-executed fraction per unit
        of work squared (1/seconds).
    """

    o_ef: float
    o_rw: float

    def __post_init__(self) -> None:
        if self.o_ef < 0:
            raise ValueError(f"o_ef must be >= 0, got {self.o_ef}")
        if self.o_rw < 0:
            raise ValueError(f"o_rw must be >= 0, got {self.o_rw}")

    @property
    def optimal_period(self) -> float:
        """``W* = sqrt(o_ef / o_rw)`` (Equation 8)."""
        if self.o_rw == 0.0:
            return math.inf
        return math.sqrt(self.o_ef / self.o_rw)

    @property
    def optimal_overhead(self) -> float:
        """``H* = 2 sqrt(o_ef * o_rw)`` (Equation 9)."""
        return 2.0 * math.sqrt(self.o_ef * self.o_rw)

    def overhead_at(self, W: float) -> float:
        """First-order overhead ``o_ef / W + o_rw * W`` at period ``W``."""
        if W <= 0:
            raise ValueError(f"period must be positive, got {W}")
        return self.o_ef / W + self.o_rw * W

    def expected_time_at(self, W: float) -> float:
        """First-order expected pattern time ``W (1 + H(W))`` at period ``W``."""
        return W * (1.0 + self.overhead_at(W))


def decompose_overhead(
    pattern: Pattern,
    platform: Platform,
) -> OverheadDecomposition:
    """Compute ``(o_ef, o_rw)`` for an arbitrary pattern shape.

    From Proposition 4 (Equation 22)::

        o_ef = sum_i (m_i - 1) V  +  n (V* + C_M)  +  C_D
        o_rw = lambda_s * sum_i beta_i^T A(m_i) beta_i * alpha_i^2
               + lambda_f / 2

    The special cases of Table 1 (single segment, single chunk, guaranteed
    verifications only) all follow by plugging the corresponding shapes.
    """
    V = platform.V
    V_star = platform.V_star
    C_M = platform.C_M
    C_D = platform.C_D
    r = platform.r

    o_ef = (
        pattern.num_partial_verifications * V
        + pattern.n * (V_star + C_M)
        + C_D
    )

    silent_factor = 0.0
    for alpha_i, beta_i in zip(pattern.alpha, pattern.betas):
        if len(beta_i) == 1:
            f_i = 1.0
        else:
            f_i = quadratic_form(beta_i, r)
        silent_factor += f_i * alpha_i * alpha_i

    o_rw = platform.lambda_s * silent_factor + platform.lambda_f / 2.0
    return OverheadDecomposition(o_ef=o_ef, o_rw=o_rw)


def optimal_period_from_decomposition(
    o_ef: float, o_rw: float
) -> float:
    """``W* = sqrt(o_ef / o_rw)`` as a free function (convenience)."""
    return OverheadDecomposition(o_ef=o_ef, o_rw=o_rw).optimal_period


def first_order_expected_time(
    pattern: Pattern, platform: Platform
) -> float:
    """First-order ``E(P)`` of a *given* pattern (Proposition 4, Eq. 22).

    ``E(P) = W + o_ef + o_rw * W^2`` with the decomposition above; the
    dropped terms are ``O(sqrt(lambda))`` for patterns of the optimal
    ``Theta(lambda^{-1/2})`` length.
    """
    d = decompose_overhead(pattern, platform)
    return pattern.W + d.o_ef + d.o_rw * pattern.W * pattern.W


def first_order_overhead(pattern: Pattern, platform: Platform) -> float:
    """First-order overhead ``H(P) = E(P)/W - 1`` of a given pattern."""
    d = decompose_overhead(pattern, platform)
    return d.overhead_at(pattern.W)
