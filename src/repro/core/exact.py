"""Exact (non-Taylor-expanded) expected execution time of a pattern.

The paper derives first-order approximations by expanding exponentials up
to second order.  This module evaluates the *exact* recursions instead
(the right-hand sides of Equations (2), (17) and (23) before expansion),
solving the linear self-references in closed form.  It serves three
purposes:

* cross-validate the first-order model (tests assert the two agree to
  ``O(lambda)`` at optimal pattern lengths);
* quantify where the first-order approximation breaks (large node counts,
  Figure 7a's divergence);
* provide an objective for numerical period optimisation
  (:mod:`repro.core.optimizer`).

The recursions follow the paper's assumptions: errors strike computations
only (Section 5 shows that relaxing this leaves first-order behaviour
unchanged), verifications/checkpoints/recoveries are error-free, and a
re-execution always restores the memory checkpoint (plus the disk
checkpoint after a fail-stop error).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.pattern import Pattern
from repro.errors.process import expected_time_lost
from repro.platforms.platform import Platform


def _segment_expected_time(
    chunk_lengths: Sequence[float],
    verif_costs: Sequence[float],
    *,
    lambda_f: float,
    lambda_s: float,
    recall: Sequence[float],
    C_end: float,
    R_M: float,
    R_D: float,
    prior_work: float,
) -> float:
    """Exact expected time of one segment (Equation (17)/(23) solved).

    Parameters
    ----------
    chunk_lengths:
        Absolute chunk lengths ``w_j`` within the segment.
    verif_costs:
        Cost of the verification ending each chunk (partial costs, with the
        last entry being the guaranteed verification ``V*``).
    recall:
        Recall of the verification ending each chunk (last entry 1.0).
    C_end:
        Checkpoint cost paid on success (``C_M`` for interior segments,
        ``C_M + C_D`` handled by the caller via pattern-level assembly).
    prior_work:
        Expected time of the already-completed earlier segments
        (``sum_{k<i} E_k``), re-executed after a fail-stop error.
    """
    m = len(chunk_lengths)
    if m != len(verif_costs) or m != len(recall):
        raise ValueError("chunk/verification arrays must have equal length")

    pf = [-math.expm1(-lambda_f * w) for w in chunk_lengths]
    ps = [-math.expm1(-lambda_s * w) for w in chunk_lengths]

    # Probability chunk j gets executed in the current attempt: no fail-stop
    # so far, and either no silent error so far or every silent error missed
    # by the partial verifications in between (Eq. 17's q_j with g_j).
    q: List[float] = []
    for j in range(m):
        no_fs = 1.0
        for k in range(j):
            no_fs *= 1.0 - pf[k]
        no_silent = 1.0
        for k in range(j):
            no_silent *= 1.0 - ps[k]
        g = 0.0
        for ell in range(j):  # silent error strikes in chunk ell (0-based)
            clean_before = 1.0
            for k in range(ell):
                clean_before *= 1.0 - ps[k]
            missed = 1.0
            for k in range(ell, j):
                missed *= 1.0 - recall[k]
            g += clean_before * ps[ell] * missed
        q.append(no_fs * (no_silent + g))

    # Probability the whole segment is clean (no error of either kind).
    clean = 1.0
    for j in range(m):
        clean *= (1.0 - pf[j]) * (1.0 - ps[j])
    if clean <= 0.0:
        raise ValueError(
            "segment so long that success probability underflowed to 0; "
            "shorten the pattern"
        )

    # Expected one-attempt cost: executed chunks + their verifications, or
    # the truncated chunk + disk recovery + earlier-segment re-execution
    # when a fail-stop error interrupts.
    attempt = 0.0
    for j in range(m):
        lost = expected_time_lost(lambda_f, chunk_lengths[j])
        attempt += q[j] * (
            pf[j] * (lost + R_D + prior_work)
            + (1.0 - pf[j]) * (chunk_lengths[j] + verif_costs[j])
        )

    # E = clean * C_end + (1 - clean) * (R_M + E) + attempt
    #  => E = (clean * C_end + (1 - clean) * R_M + attempt) / clean
    numerator = clean * C_end + (1.0 - clean) * R_M + attempt
    return numerator / clean


def exact_expected_time(
    pattern: Pattern,
    platform: Platform,
    *,
    guaranteed_intermediate: bool = False,
) -> float:
    """Exact expected execution time ``E(P)`` of a given pattern.

    Parameters
    ----------
    pattern:
        The pattern (any shape).
    platform:
        Platform costs and rates.
    guaranteed_intermediate:
        When True, the intermediate verifications are guaranteed ones
        (cost ``V*``, recall 1) -- used for the starred families
        ``PDV*``/``PDMV*``.
    """
    V = platform.V_star if guaranteed_intermediate else platform.V
    r = 1.0 if guaranteed_intermediate else platform.r
    V_star = platform.V_star

    total = 0.0
    prior = 0.0
    for seg in pattern.segments():
        lengths = list(seg.chunk_lengths)
        m = len(lengths)
        verif_costs = [V] * (m - 1) + [V_star]
        recalls = [r] * (m - 1) + [1.0]
        E_i = _segment_expected_time(
            lengths,
            verif_costs,
            lambda_f=platform.lambda_f,
            lambda_s=platform.lambda_s,
            recall=recalls,
            C_end=platform.C_M,
            R_M=platform.R_M,
            R_D=platform.R_D,
            prior_work=prior,
        )
        total += E_i
        prior += E_i
    return total + platform.C_D


def exact_overhead(
    pattern: Pattern,
    platform: Platform,
    *,
    guaranteed_intermediate: bool = False,
) -> float:
    """Exact expected overhead ``E(P)/W - 1`` of a given pattern."""
    E = exact_expected_time(
        pattern, platform, guaranteed_intermediate=guaranteed_intermediate
    )
    return E / pattern.W - 1.0


def exact_expected_time_pd(W: float, platform: Platform) -> float:
    """Closed-form exact ``E(P)`` for the base pattern ``PD`` (Prop. 1 proof).

    ``E = (e^{(lf+ls)W} - e^{ls W})/lf - W e^{ls W} + e^{ls W}(W + V*)
    + C_D + C_M + (e^{(lf+ls)W} - e^{ls W}) R_D + (e^{(lf+ls)W} - 1) R_M``

    Provided as an independent cross-check of the generic recursion.
    Requires ``lambda_f > 0`` (the paper's expression divides by it);
    use :func:`exact_expected_time` for the silent-only case.
    """
    lf, ls = platform.lambda_f, platform.lambda_s
    if lf <= 0:
        raise ValueError("closed form requires lambda_f > 0")
    e_both = math.exp((lf + ls) * W)
    e_s = math.exp(ls * W)
    return (
        (e_both - e_s) / lf
        - W * e_s
        + e_s * (W + platform.V_star)
        + platform.C_D
        + platform.C_M
        + (e_both - e_s) * platform.R_D
        + (e_both - 1.0) * platform.R_M
    )
