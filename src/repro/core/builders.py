"""Builders for the six canonical pattern families of Table 1.

============  =========  ===================  ======================
family        segments   chunks per segment   intermediate verifs
============  =========  ===================  ======================
``PD``        1          1                    none
``PDV*``      1          m (equal)            guaranteed
``PDV``       1          m (1/r-weighted)     partial
``PDM``       n (equal)  1                    none
``PDMV*``     n (equal)  m (equal)            guaranteed
``PDMV``      n (equal)  m (1/r-weighted)     partial
============  =========  ===================  ======================

For the starred families the "partial" verifications are in fact
guaranteed (cost ``V*``, recall 1); we model that by building the pattern
with recall-1 chunk weights (equal chunks) and letting the caller pass the
guaranteed costs -- see :func:`repro.core.formulas.optimal_pattern`, which
handles the cost substitution per family.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.matrices import optimal_beta
from repro.core.pattern import Pattern


class PatternKind(enum.Enum):
    """The six pattern families of Table 1, in the paper's order."""

    PD = "PD"
    PDV_STAR = "PDV*"
    PDV = "PDV"
    PDM = "PDM"
    PDMV_STAR = "PDMV*"
    PDMV = "PDMV"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def uses_memory_checkpoints(self) -> bool:
        """True for the two-level families (n > 1 allowed)."""
        return self in (
            PatternKind.PDM,
            PatternKind.PDMV_STAR,
            PatternKind.PDMV,
        )

    @property
    def uses_partial_verifications(self) -> bool:
        """True when intermediate verifications are *partial* (recall < 1)."""
        return self in (PatternKind.PDV, PatternKind.PDMV)

    @property
    def uses_intermediate_verifications(self) -> bool:
        """True when chunks exist inside segments (m > 1 allowed)."""
        return self in (
            PatternKind.PDV_STAR,
            PatternKind.PDV,
            PatternKind.PDMV_STAR,
            PatternKind.PDMV,
        )


#: Order of the families as displayed in the paper's plots.
PATTERN_ORDER: Tuple[PatternKind, ...] = (
    PatternKind.PD,
    PatternKind.PDV_STAR,
    PatternKind.PDV,
    PatternKind.PDM,
    PatternKind.PDMV_STAR,
    PatternKind.PDMV,
)


def _equal(k: int) -> Tuple[float, ...]:
    """k equal fractions summing to exactly 1 (last one fixed by fsum)."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    base = [1.0 / k] * k
    base[-1] = 1.0 - sum(base[:-1])
    return tuple(base)


def pattern_pd(W: float) -> Pattern:
    """``PD``: one segment, one chunk -- the Young/Daly-style base pattern."""
    return Pattern(W=W, alpha=(1.0,), betas=((1.0,),))


def pattern_pdv_star(W: float, m: int) -> Pattern:
    """``PDV*``: one segment, ``m`` equal chunks with guaranteed verifications."""
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    return Pattern(W=W, alpha=(1.0,), betas=(_equal(m),))


def pattern_pdv(W: float, m: int, r: float) -> Pattern:
    """``PDV``: one segment, ``m`` chunks with partial verifications.

    Chunk sizes follow Theorem 3: first/last chunks larger by ``1/r``.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    beta = optimal_beta(m, r)
    beta = beta / beta.sum()
    return Pattern(W=W, alpha=(1.0,), betas=(tuple(beta.tolist()),))


def pattern_pdm(W: float, n: int) -> Pattern:
    """``PDM``: ``n`` equal one-chunk segments (memory ckpts, no extra verifs)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return Pattern(W=W, alpha=_equal(n), betas=tuple(((1.0,),) * n))


def pattern_pdmv_star(W: float, n: int, m: int) -> Pattern:
    """``PDMV*``: ``n`` equal segments, each with ``m`` equal chunks."""
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1, got n={n}, m={m}")
    return Pattern(W=W, alpha=_equal(n), betas=tuple((_equal(m),) * n))


def pattern_pdmv(W: float, n: int, m: int, r: float) -> Pattern:
    """``PDMV``: the full pattern -- ``n`` equal segments of ``m`` chunks
    with Theorem-4 chunk weights."""
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1, got n={n}, m={m}")
    beta = optimal_beta(m, r)
    beta = tuple((beta / beta.sum()).tolist())
    return Pattern(W=W, alpha=_equal(n), betas=tuple((beta,) * n))


def build_pattern(
    kind: PatternKind,
    W: float,
    *,
    n: int = 1,
    m: int = 1,
    r: float = 0.8,
) -> Pattern:
    """Build a canonical pattern of the given family.

    Parameters irrelevant to the family are ignored (e.g. ``n`` for
    single-level families), matching the paper's convention that those
    are structurally fixed at 1.
    """
    if kind is PatternKind.PD:
        return pattern_pd(W)
    if kind is PatternKind.PDV_STAR:
        return pattern_pdv_star(W, m)
    if kind is PatternKind.PDV:
        return pattern_pdv(W, m, r)
    if kind is PatternKind.PDM:
        return pattern_pdm(W, n)
    if kind is PatternKind.PDMV_STAR:
        return pattern_pdmv_star(W, n, m)
    if kind is PatternKind.PDMV:
        return pattern_pdmv(W, n, m, r)
    raise ValueError(f"unknown pattern kind: {kind!r}")  # pragma: no cover
