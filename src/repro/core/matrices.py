"""The ``A(m)`` quadratic form for silent-error re-execution.

Proposition 3: with ``m`` chunks of relative sizes ``beta`` separated by
partial verifications of recall ``r``, the expected fraction of the
segment's work squared that is re-executed because of silent errors is
``beta^T A beta``, where ``A`` is the symmetric ``m x m`` matrix

    A[i, j] = (1 + (1 - r)^|i - j|) / 2 .

Theorem 3 gives the minimiser subject to ``sum beta = 1``:

    beta_1 = beta_m = 1 / ((m - 2) r + 2),
    beta_j = r / ((m - 2) r + 2)   for 1 < j < m,

with minimum value ``f* = (1 + (2 - r) / ((m - 2) r + 2)) / 2``.  The
interior chunks are smaller by a factor ``r`` because an interior chunk is
covered by partial verifications on *both* sides.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np
from scipy import optimize as _opt


@lru_cache(maxsize=1024)
def _recall_matrix_cached(m: int, r: float) -> np.ndarray:
    """Shared read-only ``A(m)`` instance per ``(m, r)``.

    The integer-shape search of the Table-1 optimiser evaluates the same
    handful of matrices dozens of times per optimisation; building each
    once per process removes that from the per-point hot path.  The
    cached array is frozen so accidental mutation cannot poison later
    evaluations.
    """
    idx = np.arange(m)
    dist = np.abs(idx[:, None] - idx[None, :])
    A = 0.5 * (1.0 + (1.0 - r) ** dist)
    A.setflags(write=False)
    return A


def recall_matrix(m: int, r: float) -> np.ndarray:
    """Build the symmetric ``A(m)`` matrix: ``(1 + (1-r)^|i-j|) / 2``.

    Parameters
    ----------
    m:
        Number of chunks (matrix dimension), ``m >= 1``.
    r:
        Partial-verification recall in ``(0, 1]``.
    """
    if m < 1:
        raise ValueError(f"need at least one chunk, got m={m}")
    if not (0.0 < r <= 1.0):
        raise ValueError(f"recall must be in (0, 1], got {r}")
    return _recall_matrix_cached(int(m), float(r)).copy()


@lru_cache(maxsize=4096)
def _quadratic_form_cached(beta: tuple, r: float) -> float:
    b = np.asarray(beta, dtype=np.float64)
    A = _recall_matrix_cached(b.size, r)
    return float(b @ A @ b)


def quadratic_form(beta: Sequence[float], r: float) -> float:
    """Evaluate ``beta^T A(m) beta`` for chunk fractions ``beta``.

    Memoised per ``(beta, r)``: patterns repeat the same chunk vector
    across segments and the optimiser re-evaluates the same shapes, so
    the quadratic form for a given vector is computed once per process.
    """
    if not (0.0 < r <= 1.0):
        raise ValueError(f"recall must be in (0, 1], got {r}")
    if type(beta) is tuple and beta and type(beta[0]) is float:
        # Pattern chunk vectors are already plain-float tuples: use them
        # as the cache key directly (the hot path of the shape search).
        # Anything else (nested tuples, ints, arrays) takes the
        # validating slow path below.
        return _quadratic_form_cached(beta, float(r))
    b = np.asarray(beta, dtype=np.float64)
    if b.ndim != 1 or b.size < 1:
        raise ValueError("beta must be a non-empty 1-D vector")
    return _quadratic_form_cached(tuple(float(x) for x in b), float(r))


def optimal_beta(m: int, r: float) -> np.ndarray:
    """The paper's optimal chunk fractions ``beta*`` (Theorem 3, Eq. 18).

    First and last chunks get weight ``1``, interior chunks weight ``r``,
    normalised by ``(m - 2) r + 2``.  For ``m = 1`` this is ``[1.0]``.
    """
    if m < 1:
        raise ValueError(f"need at least one chunk, got m={m}")
    if not (0.0 < r <= 1.0):
        raise ValueError(f"recall must be in (0, 1], got {r}")
    if m == 1:
        return np.array([1.0])
    denom = (m - 2) * r + 2.0
    beta = np.full(m, r / denom)
    beta[0] = beta[-1] = 1.0 / denom
    return beta


def optimal_quadratic_value(m: int, r: float) -> float:
    """Minimum of ``beta^T A beta`` s.t. ``sum beta = 1`` (Theorem 3).

    ``f*(m, r) = (1 + (2 - r) / ((m - 2) r + 2)) / 2``.  For ``m = 1`` this
    equals 1 (the whole segment is re-executed on a silent error).
    """
    if m < 1:
        raise ValueError(f"need at least one chunk, got m={m}")
    if not (0.0 < r <= 1.0):
        raise ValueError(f"recall must be in (0, 1], got {r}")
    return 0.5 * (1.0 + (2.0 - r) / ((m - 2) * r + 2.0))


def minimize_quadratic_form(m: int, r: float) -> np.ndarray:
    """Numerically minimise ``beta^T A beta`` subject to the simplex constraint.

    This is a cross-check of :func:`optimal_beta`: it solves the
    equality-constrained quadratic program with scipy (SLSQP) starting
    from the uniform vector.  Returned vector sums to 1.
    """
    if m == 1:
        return np.array([1.0])
    A = recall_matrix(m, r)

    def objective(b: np.ndarray) -> float:
        return float(b @ A @ b)

    def gradient(b: np.ndarray) -> np.ndarray:
        return 2.0 * (A @ b)

    x0 = np.full(m, 1.0 / m)
    res = _opt.minimize(
        objective,
        x0,
        jac=gradient,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * m,
        constraints=[{"type": "eq", "fun": lambda b: float(np.sum(b) - 1.0)}],
        options={"maxiter": 500, "ftol": 1e-14},
    )
    if not res.success:  # pragma: no cover - scipy rarely fails here
        raise RuntimeError(f"QP solver failed: {res.message}")
    return res.x
