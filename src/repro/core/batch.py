"""Vectorised analytic model layer: whole parameter grids per call.

Scalar entry points (:func:`~repro.core.firstorder.decompose_overhead`,
:func:`~repro.core.exact.exact_overhead`,
:func:`~repro.core.optimizer.numeric_optimal_pattern`) evaluate one
pattern on one platform per call.  This module evaluates the same closed
forms over a whole **struct-of-arrays grid** of platforms -- every cell of
a ``platform x lambda_f x lambda_s x family x (n, m)`` sweep in a handful
of NumPy passes -- mirroring what :mod:`repro.simulation.fast_engine` did
for the Monte-Carlo side.

The vectorised exact recursion exploits a structural fact about the
canonical families: all ``n`` segments of a built pattern are identical,
and the per-segment expectation of Equations (17)/(23) is *affine* in the
already-completed work ``prior`` (``E = A + B * prior``), so the pattern
total collapses to the geometric sum ``A * ((1 + B)^n - 1) / B``.  Cells
are grouped by their chunk count ``m`` (small integers), and everything
else is elementwise.

Differential tests (``tests/test_batch_vs_scalar.py``) assert the batch
results track the scalar closed forms to ``rtol = 1e-12``.

Example -- a full catalog grid in a few lines::

    >>> from repro.core.batch import PlatformGrid, batch_optimal_patterns
    >>> from repro.core.builders import PatternKind
    >>> from repro.platforms.catalog import PLATFORMS
    >>> grid = PlatformGrid.from_product(
    ...     [factory() for factory in PLATFORMS.values()],
    ...     factor_f=[0.5, 1.0, 2.0],
    ...     factor_s=[0.5, 1.0, 2.0],
    ... )
    >>> opt = batch_optimal_patterns(PatternKind.PDMV, grid)
    >>> opt.overhead.shape            # one exact optimum per grid cell
    (36,)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.builders import PatternKind, _equal
from repro.platforms.platform import Platform, default_costs
from repro.platforms.catalog import get_platform

#: Version of the analytic-tier record computation.  Participates in the
#: campaign cache key for ``engine="analytic"`` points, so analytic rows
#: computed under different generations are never silently mixed.
ANALYTIC_VERSION = 1

#: Golden-section constants of the vectorised period search.
_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0
_GOLDEN2 = (3.0 - math.sqrt(5.0)) / 2.0

_ArrayLike = Union[float, int, Sequence[float], np.ndarray]


# ---------------------------------------------------------------------------
# the struct-of-arrays platform grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformGrid:
    """Struct-of-arrays view of many platforms (one cell per platform).

    Every field is a 1-D ``float64`` array of equal length; cell ``i``
    describes one :class:`~repro.platforms.platform.Platform` parameter
    vector.  ``names`` carries the platform name per cell (presentation
    only; it never enters the numerics).
    """

    lambda_f: np.ndarray
    lambda_s: np.ndarray
    C_D: np.ndarray
    C_M: np.ndarray
    R_D: np.ndarray
    R_M: np.ndarray
    V_star: np.ndarray
    V: np.ndarray
    r: np.ndarray
    names: Tuple[str, ...]

    _FIELDS = ("lambda_f", "lambda_s", "C_D", "C_M", "R_D", "R_M",
               "V_star", "V", "r")

    def __post_init__(self) -> None:
        size = None
        for field in self._FIELDS:
            arr = np.ascontiguousarray(getattr(self, field), dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError(f"{field} must be 1-D, got shape {arr.shape}")
            if size is None:
                size = arr.size
            elif arr.size != size:
                raise ValueError(
                    f"{field} has {arr.size} cells but expected {size}"
                )
            object.__setattr__(self, field, arr)
        if size == 0:
            raise ValueError("a platform grid needs at least one cell")
        if len(self.names) != size:
            raise ValueError(
                f"names has {len(self.names)} entries but grid has {size}"
            )
        if np.any(self.lambda_f < 0) or np.any(self.lambda_s < 0):
            raise ValueError("error rates must be non-negative")
        if np.any((self.r <= 0.0) | (self.r > 1.0)):
            raise ValueError("recall r must be in (0, 1] for every cell")

    @property
    def size(self) -> int:
        """Number of grid cells."""
        return self.lambda_f.size

    @property
    def lambda_total(self) -> np.ndarray:
        """Per-cell combined error rate ``lambda_f + lambda_s``."""
        return self.lambda_f + self.lambda_s

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_platforms(
        cls, platforms: Sequence[Union[Platform, str]]
    ) -> "PlatformGrid":
        """One cell per platform (catalog names are resolved)."""
        plats = [
            get_platform(p) if isinstance(p, str) else p for p in platforms
        ]
        if not plats:
            raise ValueError("need at least one platform")
        return cls(
            lambda_f=np.array([p.lambda_f for p in plats]),
            lambda_s=np.array([p.lambda_s for p in plats]),
            C_D=np.array([p.C_D for p in plats]),
            C_M=np.array([p.C_M for p in plats]),
            R_D=np.array([p.R_D for p in plats]),
            R_M=np.array([p.R_M for p in plats]),
            V_star=np.array([p.V_star for p in plats]),
            V=np.array([p.V for p in plats]),
            r=np.array([p.r for p in plats]),
            names=tuple(p.name for p in plats),
        )

    @classmethod
    def from_product(
        cls,
        platforms: Sequence[Union[Platform, str]],
        *,
        factor_f: Sequence[float] = (1.0,),
        factor_s: Sequence[float] = (1.0,),
    ) -> "PlatformGrid":
        """The ``platform x lambda_f x lambda_s`` cross-product grid.

        Cell order is platform-major, then ``factor_f``, then ``factor_s``
        (matching three nested loops), so cell
        ``i = (p * len(factor_f) + a) * len(factor_s) + b``.
        """
        base = cls.from_platforms(platforms)
        ff = np.ascontiguousarray(factor_f, dtype=np.float64)
        fs = np.ascontiguousarray(factor_s, dtype=np.float64)
        if ff.size == 0 or fs.size == 0:
            raise ValueError("factor grids must be non-empty")
        if np.any(ff < 0) or np.any(fs < 0):
            raise ValueError("rate factors must be non-negative")
        reps = ff.size * fs.size
        expand = lambda arr: np.repeat(arr, reps)  # noqa: E731
        lf = base.lambda_f[:, None, None] * ff[None, :, None]
        ls = base.lambda_s[:, None, None] * fs[None, None, :]
        return cls(
            lambda_f=np.broadcast_to(lf, (base.size, ff.size, fs.size)).ravel(),
            lambda_s=np.broadcast_to(ls, (base.size, ff.size, fs.size)).ravel(),
            C_D=expand(base.C_D),
            C_M=expand(base.C_M),
            R_D=expand(base.R_D),
            R_M=expand(base.R_M),
            V_star=expand(base.V_star),
            V=expand(base.V),
            r=expand(base.r),
            names=tuple(np.repeat(np.array(base.names, dtype=object), reps)),
        )

    # -- round-trips --------------------------------------------------------
    def platform_at(self, i: int) -> Platform:
        """Materialise cell ``i`` as a scalar :class:`Platform`."""
        return Platform(
            name=self.names[i],
            nodes=1,
            lambda_f=float(self.lambda_f[i]),
            lambda_s=float(self.lambda_s[i]),
            costs=default_costs(
                C_D=float(self.C_D[i]),
                C_M=float(self.C_M[i]),
                R_D=float(self.R_D[i]),
                R_M=float(self.R_M[i]),
                V_star=float(self.V_star[i]),
                V=float(self.V[i]),
                r=float(self.r[i]),
            ),
        )


def _effective_verification(
    kind: PatternKind, grid: PlatformGrid
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cell intermediate-verification cost and recall for a family.

    Starred families run *guaranteed* verifications between chunks
    (cost ``V*``, recall 1) -- the same substitution
    :func:`repro.core.formulas.simulation_costs` applies for the scalar
    path.
    """
    if kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR):
        return grid.V_star, np.ones_like(grid.r)
    return grid.V, grid.r


def _normalise_shape(
    kind: PatternKind, grid: PlatformGrid, n: _ArrayLike, m: _ArrayLike
) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcast ``(n, m)`` to the grid and apply the family's structure.

    Matches :func:`repro.core.builders.build_pattern`: parameters that a
    family fixes structurally (``n`` for single-level families, ``m`` for
    verification-free ones) are forced to 1 regardless of the input.
    """
    n_arr = np.broadcast_to(
        np.asarray(n, dtype=np.int64), (grid.size,)
    ).copy()
    m_arr = np.broadcast_to(
        np.asarray(m, dtype=np.int64), (grid.size,)
    ).copy()
    if np.any(n_arr < 1) or np.any(m_arr < 1):
        raise ValueError("need n >= 1 and m >= 1 in every cell")
    if not kind.uses_memory_checkpoints:
        n_arr[:] = 1
    if not kind.uses_intermediate_verifications:
        m_arr[:] = 1
    return n_arr, m_arr


# ---------------------------------------------------------------------------
# first-order decomposition and closed forms, vectorised
# ---------------------------------------------------------------------------


def batch_quadratic_value(m: _ArrayLike, r: _ArrayLike) -> np.ndarray:
    """Vectorised ``f*(m, r)`` of Theorem 3 (minimum of the quadratic form).

    ``f*(m, r) = (1 + (2 - r) / ((m - 2) r + 2)) / 2``; equals 1 at
    ``m = 1`` (whole segment re-executed on a silent error).
    """
    m_arr = np.asarray(m, dtype=np.float64)
    r_arr = np.asarray(r, dtype=np.float64)
    return 0.5 * (1.0 + (2.0 - r_arr) / ((m_arr - 2.0) * r_arr + 2.0))


def batch_decompose(
    kind: PatternKind,
    grid: PlatformGrid,
    n: _ArrayLike = 1,
    m: _ArrayLike = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised ``(o_ef, o_rw)`` of Proposition 4 for a family grid.

    Equivalent to building the canonical family pattern with shape
    ``(n, m)`` in every cell and calling
    :func:`repro.core.firstorder.decompose_overhead` (against the starred
    families' guaranteed-verification platform view where applicable).
    """
    n_arr, m_arr = _normalise_shape(kind, grid, n, m)
    V_eff, r_eff = _effective_verification(kind, grid)
    n_f = n_arr.astype(np.float64)
    m_f = m_arr.astype(np.float64)
    o_ef = (
        n_f * (m_f - 1.0) * V_eff
        + n_f * (grid.V_star + grid.C_M)
        + grid.C_D
    )
    # sum_i f_i alpha_i^2 = n * f*(m, r) * (1/n)^2 = f*(m, r) / n
    silent_factor = batch_quadratic_value(m_f, r_eff) / n_f
    o_rw = grid.lambda_s * silent_factor + grid.lambda_f / 2.0
    return o_ef, o_rw


def batch_optimal_period(o_ef: np.ndarray, o_rw: np.ndarray) -> np.ndarray:
    """``W* = sqrt(o_ef / o_rw)`` per cell (``inf`` where ``o_rw == 0``)."""
    with np.errstate(divide="ignore"):
        return np.where(
            o_rw == 0.0, np.inf, np.sqrt(np.divide(
                o_ef, np.where(o_rw == 0.0, 1.0, o_rw)
            ))
        )


def batch_optimal_overhead(o_ef: np.ndarray, o_rw: np.ndarray) -> np.ndarray:
    """``H* = 2 sqrt(o_ef o_rw)`` per cell."""
    return 2.0 * np.sqrt(o_ef * o_rw)


def batch_overhead_at(
    o_ef: np.ndarray, o_rw: np.ndarray, W: _ArrayLike
) -> np.ndarray:
    """First-order overhead ``o_ef / W + o_rw W`` per cell."""
    W_arr = np.asarray(W, dtype=np.float64)
    if np.any(W_arr <= 0):
        raise ValueError("period must be positive in every cell")
    return o_ef / W_arr + o_rw * W_arr


def batch_continuous_n_star(
    kind: PatternKind, grid: PlatformGrid
) -> np.ndarray:
    """Vectorised Table-1 continuous ``n_bar*`` (Theorems 1-4)."""
    if not kind.uses_memory_checkpoints:
        return np.ones(grid.size)
    lf, ls = grid.lambda_f, grid.lambda_s
    with np.errstate(divide="ignore", invalid="ignore"):
        if kind is PatternKind.PDM:
            core = 2.0 * ls / lf * grid.C_D / (grid.V_star + grid.C_M)
        elif kind is PatternKind.PDMV_STAR:
            core = ls / lf * grid.C_D / grid.C_M
        elif kind is PatternKind.PDMV:
            g = (2.0 - grid.r) / grid.r
            denom = grid.V_star - g * grid.V + grid.C_M
            denom = np.where(denom <= 0.0, grid.C_M, denom)
            core = ls / lf * grid.C_D / denom
        else:  # pragma: no cover - exhaustive over memory families
            raise ValueError(f"unexpected kind {kind}")
        out = np.sqrt(core)
    out = np.where(lf == 0.0, np.inf, out)
    return np.where((lf != 0.0) & (ls == 0.0), 1.0, out)


def batch_continuous_m_star(
    kind: PatternKind, grid: PlatformGrid
) -> np.ndarray:
    """Vectorised Table-1 continuous ``m_bar*`` (Theorems 1-4)."""
    if not kind.uses_intermediate_verifications:
        return np.ones(grid.size)
    lf, ls = grid.lambda_f, grid.lambda_s
    Vs, CM, CD, V, r = grid.V_star, grid.C_M, grid.C_D, grid.V, grid.r
    g = (2.0 - r) / r
    with np.errstate(divide="ignore", invalid="ignore"):
        if kind is PatternKind.PDV_STAR:
            out = np.sqrt(ls / (ls + lf) * (CM + CD) / Vs)
        elif kind is PatternKind.PDV:
            inner = ls / (ls + lf) * g * ((Vs + CM + CD) / V - g)
            out = 2.0 - 2.0 / r + np.sqrt(np.maximum(inner, 0.0))
        elif kind is PatternKind.PDMV_STAR:
            out = np.sqrt(CM / Vs)
        elif kind is PatternKind.PDMV:
            inner = g * ((Vs + CM) / V - g)
            out = 2.0 - 2.0 / r + np.sqrt(np.maximum(inner, 0.0))
        else:  # pragma: no cover - exhaustive over chunked families
            raise ValueError(f"unexpected kind {kind}")
    return np.where(ls == 0.0, 1.0, out)


def _batch_conditional_n_star(
    kind: PatternKind, grid: PlatformGrid, m: np.ndarray
) -> np.ndarray:
    """Vectorised conditional minimiser of ``F(n)`` for fixed integer ``m``.

    Mirrors :func:`repro.core.optimizer`-adjacent
    ``repro.core.formulas._conditional_n_star`` cell-wise, including its
    special-case ordering (``ls == 0`` or ``C_D == 0`` before
    ``lf == 0``).
    """
    if not kind.uses_memory_checkpoints:
        return np.ones(grid.size)
    V_eff, r_eff = _effective_verification(kind, grid)
    m_f = m.astype(np.float64)
    f = batch_quadratic_value(m_f, r_eff)
    a = (m_f - 1.0) * V_eff + grid.V_star + grid.C_M
    lf, ls = grid.lambda_f, grid.lambda_s
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.sqrt(2.0 * grid.C_D * f * ls / (a * lf))
    out = np.where(lf == 0.0, np.inf, out)
    return np.where((ls == 0.0) | (grid.C_D == 0.0), 1.0, out)


# ---------------------------------------------------------------------------
# exact overhead recursion, vectorised
# ---------------------------------------------------------------------------


def _expected_time_lost(lam_f: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Vectorised Equation (3): conditional fail-stop arrival time.

    Branch thresholds replicate the scalar
    :func:`repro.errors.process.expected_time_lost` exactly (series below
    ``x = 1e-4``, saturation above ``x = 700``).
    """
    x = lam_f * w
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        series = w * (0.5 - x / 12.0 + x**3 / 720.0)
        inv = np.divide(1.0, np.where(lam_f == 0.0, 1.0, lam_f))
        main = inv - w / np.expm1(np.where(x < 1e-4, 1.0, x))
    return np.where(x < 1e-4, series, np.where(x > 700.0, inv, main))


def _chunk_fractions(
    kind: PatternKind, r: np.ndarray, m: int
) -> np.ndarray:
    """Per-cell chunk fractions ``beta`` of the family at chunk count ``m``.

    ``PDV``/``PDMV`` use Theorem 3's ``1/r``-weighted chunks (per-cell
    recall); every other family uses equal chunks.  Matches the builders'
    float-level normalisation.
    """
    cells = r.size
    if kind.uses_partial_verifications and m > 1:
        denom = (m - 2.0) * r + 2.0
        beta = np.broadcast_to((r / denom)[:, None], (cells, m)).copy()
        beta[:, 0] = 1.0 / denom
        beta[:, -1] = 1.0 / denom
        return beta / beta.sum(axis=1, keepdims=True)
    return np.broadcast_to(
        np.array(_equal(m), dtype=np.float64)[None, :], (cells, m)
    )


def _geometric_sum(B: np.ndarray, n: np.ndarray) -> np.ndarray:
    """``sum_{i=0}^{n-1} (1 + B)^i`` = ``expm1(n log1p(B)) / B``, B >= 0.

    Well-conditioned for small ``B`` (returns ``n`` in the limit).
    """
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        out = np.expm1(n * np.log1p(B)) / np.where(B == 0.0, 1.0, B)
    return np.where(B == 0.0, n.astype(np.float64), out)


def batch_exact_overhead(
    kind: PatternKind,
    grid: PlatformGrid,
    W: _ArrayLike,
    n: _ArrayLike = 1,
    m: _ArrayLike = 1,
    *,
    out_of_range: str = "raise",
) -> np.ndarray:
    """Vectorised exact expected overhead ``E(P)/W - 1`` per grid cell.

    Equivalent to building the canonical family pattern with shape
    ``(n, m)`` at period ``W`` in every cell and calling
    :func:`repro.core.exact.exact_overhead` (with
    ``guaranteed_intermediate`` set for the starred families).

    Parameters
    ----------
    out_of_range:
        ``"raise"`` (default) raises :class:`ValueError` when a cell's
        success probability underflows to zero (the scalar behaviour);
        ``"inf"`` marks such cells with ``inf`` instead (used internally
        by the period search).
    """
    if out_of_range not in ("raise", "inf"):
        raise ValueError(
            f"out_of_range must be 'raise' or 'inf', got {out_of_range!r}"
        )
    n_arr, m_arr = _normalise_shape(kind, grid, n, m)
    W_arr = np.broadcast_to(
        np.asarray(W, dtype=np.float64), (grid.size,)
    ).copy()
    if np.any(W_arr <= 0):
        raise ValueError("pattern work W must be positive in every cell")
    V_eff, r_eff = _effective_verification(kind, grid)

    E = np.empty(grid.size)
    bad = np.zeros(grid.size, dtype=bool)
    for mv in np.unique(m_arr):
        idx = np.nonzero(m_arr == mv)[0]
        E[idx], bad[idx] = _exact_expected_time_group(
            kind, grid, idx, W_arr[idx], n_arr[idx], int(mv),
            V_eff[idx], r_eff[idx],
        )
    if np.any(bad) and out_of_range == "raise":
        raise ValueError(
            "segment so long that success probability underflowed to 0 "
            "in at least one grid cell; shorten the pattern"
        )
    return E / W_arr - 1.0


def _exact_expected_time_group(
    kind: PatternKind,
    grid: PlatformGrid,
    idx: np.ndarray,
    W: np.ndarray,
    n: np.ndarray,
    m: int,
    V_eff: np.ndarray,
    r_eff: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``E(P)`` plus an underflow flag, for cells sharing ``m``."""
    lf = grid.lambda_f[idx][:, None]
    ls = grid.lambda_s[idx][:, None]
    beta = _chunk_fractions(kind, grid.r[idx], m)
    w = beta * (W / n.astype(np.float64))[:, None]

    pf = -np.expm1(-lf * w)
    ps = -np.expm1(-ls * w)
    surv_f = 1.0 - pf
    surv_s = 1.0 - ps

    # Exclusive prefix products: probability no fail-stop / no silent
    # error before chunk j.
    ones = np.ones((idx.size, 1))
    no_fs = np.concatenate([ones, np.cumprod(surv_f, axis=1)[:, :-1]], axis=1)
    no_silent = np.concatenate(
        [ones, np.cumprod(surv_s, axis=1)[:, :-1]], axis=1
    )

    # g_j = sum_{ell<j} clean_before(ell) ps_ell (1-r)^{j-ell}: the
    # probability an earlier silent error slipped past every partial
    # verification up to chunk j.  Recurrence g_j = s (g_{j-1} + c_{j-1}).
    s = (1.0 - r_eff)[:, None]
    c = no_silent * ps
    g = np.zeros_like(w)
    for j in range(1, m):
        g[:, j] = s[:, 0] * (g[:, j - 1] + c[:, j - 1])

    q = no_fs * (no_silent + g)
    clean = np.prod(surv_f * surv_s, axis=1)

    lost = _expected_time_lost(np.broadcast_to(lf, w.shape), w)
    verif = np.broadcast_to(V_eff[:, None], w.shape).copy()
    verif[:, -1] = grid.V_star[idx]

    R_D = grid.R_D[idx][:, None]
    attempt0 = np.sum(
        q * (pf * (lost + R_D) + (1.0 - pf) * (w + verif)), axis=1
    )
    S = np.sum(q * pf, axis=1)

    with np.errstate(divide="ignore", invalid="ignore"):
        bad = clean <= 0.0
        safe_clean = np.where(bad, 1.0, clean)
        A = (
            clean * grid.C_M[idx]
            + (1.0 - clean) * grid.R_M[idx]
            + attempt0
        ) / safe_clean
        B = S / safe_clean
    total = A * _geometric_sum(B, n) + grid.C_D[idx]
    return np.where(bad, np.inf, total), bad


# ---------------------------------------------------------------------------
# vectorised period optimisation and the batch pattern optimiser
# ---------------------------------------------------------------------------


def batch_refine_period(
    kind: PatternKind,
    grid: PlatformGrid,
    n: _ArrayLike = 1,
    m: _ArrayLike = 1,
    *,
    bracket_scale: float = 50.0,
    rel_tol: float = 1e-8,
    max_iter: int = 120,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimise the exact overhead over ``W`` in every cell at once.

    The vectorised counterpart of
    :func:`repro.core.optimizer.optimize_period`: the search bracket is
    derived from the first-order optimum exactly as in the scalar code,
    then every cell runs a golden-section search in lockstep (one
    vectorised exact-overhead evaluation per iteration).

    Returns ``(W_opt, overhead_opt)`` arrays.
    """
    n_arr, m_arr = _normalise_shape(kind, grid, n, m)
    o_ef, o_rw = batch_decompose(kind, grid, n_arr, m_arr)
    W_guess = batch_optimal_period(o_ef, o_rw)
    if np.any(~np.isfinite(W_guess)):
        raise ValueError(
            "first-order period is not finite in at least one grid cell; "
            "cannot bracket"
        )
    lo = W_guess / bracket_scale
    hi = W_guess * bracket_scale
    max_W = 50.0 / np.maximum(grid.lambda_total, 1e-300)
    hi = np.minimum(hi, max_W)
    if np.any(hi <= lo):
        raise ValueError(
            "period bracket is empty in at least one grid cell: the "
            "first-order optimum exceeds the exact recursion's stability "
            "cap (50 / lambda_total); check the platform rates and costs"
        )

    def H(W: np.ndarray) -> np.ndarray:
        return batch_exact_overhead(
            kind, grid, W, n_arr, m_arr, out_of_range="inf"
        )

    # Cells freeze individually the moment *their own* bracket is tight
    # enough: a cell's update sequence is then independent of which
    # other cells share the batch, so a configuration refines to
    # bit-identical results whether evaluated alone or grouped -- the
    # invariant the campaign cache keys rely on.
    a, b = lo.copy(), hi.copy()
    c = a + _GOLDEN2 * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = H(c), H(d)
    for _ in range(max_iter):
        active = (b - a) / W_guess > rel_tol
        if not np.any(active):
            break
        shrink_right = active & (fc < fd)
        shrink_left = active & ~shrink_right
        # where shrink_right: b <- d, d <- c, fd <- fc, fresh c
        # where shrink_left:  a <- c, c <- d, fc <- fd, fresh d
        b = np.where(shrink_right, d, b)
        a = np.where(shrink_left, c, a)
        new_x = np.where(
            shrink_right,
            a + _GOLDEN2 * (b - a),
            a + _GOLDEN * (b - a),
        )
        f_new = H(np.where(active, new_x, c))
        d_next = np.where(shrink_right, c, np.where(shrink_left, new_x, d))
        fd_next = np.where(shrink_right, fc, np.where(shrink_left, f_new, fd))
        c_next = np.where(shrink_right, new_x, np.where(shrink_left, d, c))
        fc_next = np.where(shrink_right, f_new, np.where(shrink_left, fd, fc))
        c, d, fc, fd = c_next, d_next, fc_next, fd_next
    W_opt = 0.5 * (a + b)
    return W_opt, H(W_opt)


@dataclass(frozen=True)
class BatchOptima:
    """Per-cell optimisation results of one family over a grid.

    The first-order fields mirror
    :class:`~repro.core.formulas.OptimalPattern`; ``W`` / ``overhead``
    mirror :class:`~repro.core.optimizer.NumericOptimum` (the numerically
    optimal period against the exact model) when the optimiser ran with
    period refinement, and fall back to the first-order optimum
    otherwise.
    """

    kind: PatternKind
    n: np.ndarray
    m: np.ndarray
    n_cont: np.ndarray
    m_cont: np.ndarray
    o_ef: np.ndarray
    o_rw: np.ndarray
    W_star: np.ndarray
    H_star: np.ndarray
    W: np.ndarray
    overhead: np.ndarray
    refined: bool

    @property
    def size(self) -> int:
        """Number of grid cells."""
        return self.n.size


def batch_optimal_patterns(
    kind: PatternKind,
    grid: PlatformGrid,
    *,
    refine_period: bool = True,
) -> BatchOptima:
    """Optimise one family on every grid cell at once.

    Replicates :func:`repro.core.formulas.optimal_pattern` cell-wise --
    continuous ``(n_bar*, m_bar*)``, integer-shape refinement on the
    convex product ``F = o_ef o_rw`` with identical candidate windows and
    tie-breaking -- then (by default) refines the period against the
    vectorised exact recursion, matching
    :func:`repro.core.optimizer.numeric_optimal_pattern`.
    """
    if np.any(grid.lambda_total == 0.0):
        raise ValueError(
            "at least one grid cell has zero error rates; no finite "
            "optimal pattern exists there"
        )
    n_cont = batch_continuous_n_star(kind, grid)
    m_cont = batch_continuous_m_star(kind, grid)
    if np.any(~np.isfinite(m_cont)):
        raise ValueError(
            "continuous chunk optimum is infinite in at least one grid "
            "cell; cannot round"
        )
    n_cont_capped = np.where(np.isinf(n_cont), 1024.0, n_cont)

    # Chunk-count candidates: the scalar window
    # ``range(max(1, floor-1), max(1, ceil+1) + 1)`` plus the always-on
    # fallback m = 1, enumerated in ascending order per cell so the
    # first-strict-improvement tie-breaking matches the scalar loop.
    # The window spans at most 4 integers (``hi - lo <= 3``).
    lo_m = np.maximum(1.0, np.floor(m_cont) - 1.0)
    hi_m = np.maximum(1.0, np.ceil(m_cont) + 1.0)
    m_slots: List[Tuple[np.ndarray, np.ndarray]] = []
    one = np.ones(grid.size)
    m_slots.append((one, lo_m > 1.0))  # the m = 1 fallback, when not in window
    for offset in (0.0, 1.0, 2.0, 3.0):
        cand = lo_m + offset
        m_slots.append((cand, cand <= hi_m))

    best_F = np.full(grid.size, np.inf)
    best_n = np.ones(grid.size, dtype=np.int64)
    best_m = np.ones(grid.size, dtype=np.int64)
    best_oef = np.zeros(grid.size)
    best_orw = np.zeros(grid.size)

    for m_cand_f, m_valid in m_slots:
        if not np.any(m_valid):
            continue
        m_cand = np.maximum(m_cand_f, 1.0).astype(np.int64)
        n_bar = _batch_conditional_n_star(kind, grid, m_cand)
        n_bar = np.where(np.isinf(n_bar), 1024.0, n_bar)
        lo_n = np.maximum(1.0, np.floor(n_bar))
        hi_n = np.maximum(1.0, np.ceil(n_bar))
        for n_cand_f, n_valid in (
            (lo_n, np.ones(grid.size, dtype=bool)),
            (hi_n, hi_n > lo_n),
        ):
            valid = m_valid & n_valid
            if not np.any(valid):
                continue
            n_cand = n_cand_f.astype(np.int64)
            o_ef, o_rw = batch_decompose(kind, grid, n_cand, m_cand)
            F = o_ef * o_rw
            take = valid & (F < best_F - 1e-18)
            best_F = np.where(take, F, best_F)
            best_n = np.where(take, n_cand, best_n)
            best_m = np.where(take, m_cand, best_m)
            best_oef = np.where(take, o_ef, best_oef)
            best_orw = np.where(take, o_rw, best_orw)

    # Structural normalisation (matches build_pattern's convention).
    best_n, best_m = _normalise_shape(kind, grid, best_n, best_m)
    W_star = batch_optimal_period(best_oef, best_orw)
    if np.any(~np.isfinite(W_star)):
        raise ValueError(
            "optimal period is infinite (o_rw == 0) in at least one grid "
            "cell; check error rates"
        )
    H_star = batch_optimal_overhead(best_oef, best_orw)

    if refine_period:
        W_num, H_num = batch_refine_period(kind, grid, best_n, best_m)
    else:
        W_num, H_num = W_star, H_star
    return BatchOptima(
        kind=kind,
        n=best_n,
        m=best_m,
        n_cont=n_cont_capped,
        m_cont=m_cont,
        o_ef=best_oef,
        o_rw=best_orw,
        W_star=W_star,
        H_star=H_star,
        W=W_num,
        overhead=H_num,
        refined=refine_period,
    )


# ---------------------------------------------------------------------------
# analytic-tier records
# ---------------------------------------------------------------------------


def analytic_records(
    kind: PatternKind,
    grid: PlatformGrid,
    *,
    refine_period: bool = True,
    labels: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """One analytic-tier result record per grid cell.

    The record schema intersects the Monte-Carlo campaign rows where the
    quantities are comparable: ``predicted`` is the first-order ``H*``
    and ``simulated`` is the *exact* overhead of the first-order optimal
    configuration, so shared report columns and predicted-vs-simulated
    panels work unchanged on the analytic path.  ``divergence`` is their
    difference (the Figure-7a gap).
    """
    opt = batch_optimal_patterns(kind, grid, refine_period=refine_period)
    H_exact = batch_exact_overhead(kind, grid, opt.W_star, opt.n, opt.m)
    if labels is not None and len(labels) != grid.size:
        raise ValueError(
            f"got {len(labels)} label rows for {grid.size} grid cells"
        )
    records: List[Dict[str, Any]] = []
    for i in range(grid.size):
        record: Dict[str, Any] = {
            "kind": kind.value,
            "platform_name": grid.names[i],
            "H*": float(opt.H_star[i]),
            "W_star": float(opt.W_star[i]),
            "W*_hours": float(opt.W_star[i] / 3600.0),
            "n*": int(opt.n[i]),
            "m*": int(opt.m[i]),
            "predicted": float(opt.H_star[i]),
            "H_exact": float(H_exact[i]),
            "simulated": float(H_exact[i]),
            "divergence": float(H_exact[i] - opt.H_star[i]),
        }
        if refine_period:
            record["H_numeric"] = float(opt.overhead[i])
            record["W_numeric_hours"] = float(opt.W[i] / 3600.0)
        if labels is not None:
            record = {**labels[i], **record}
        records.append(record)
    return records


def evaluate_analytic(
    kind: PatternKind,
    platform: Platform,
    *,
    refine_period: bool = True,
) -> Dict[str, Any]:
    """Analytic-tier record for one family on one platform (convenience).

    A single-cell grid produces bit-identical numbers to any larger batch
    containing the same cell, so records are cache-stable regardless of
    how points were grouped.
    """
    grid = PlatformGrid.from_platforms([platform])
    return analytic_records(kind, grid, refine_period=refine_period)[0]
