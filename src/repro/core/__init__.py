"""Core analytical model: patterns, first-order optimization, closed forms.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.pattern` -- the ``P(W, n, alpha, m, <beta_1..beta_n>)``
  pattern structure and its resolved action schedule;
* :mod:`repro.core.builders` -- the six canonical pattern families of
  Table 1 (``PD``, ``PDV*``, ``PDV``, ``PDM``, ``PDMV*``, ``PDMV``);
* :mod:`repro.core.matrices` -- the ``A(m)`` quadratic form governing
  silent-error re-execution and its minimiser ``beta*``;
* :mod:`repro.core.firstorder` -- the ``H = o_ef/W + o_rw*W`` overhead
  decomposition for arbitrary pattern shapes;
* :mod:`repro.core.formulas` -- Table-1 closed forms for the optimal
  ``W*, n*, m*, H*`` of every family;
* :mod:`repro.core.exact` -- exact (non-Taylor-expanded) expected
  execution time of a fixed pattern, via the paper's recursions;
* :mod:`repro.core.optimizer` -- scipy-based numerical optimisation that
  cross-validates the closed forms;
* :mod:`repro.core.batch` -- the vectorised analytic layer: the same
  decomposition, closed forms and exact recursion evaluated over whole
  struct-of-arrays parameter grids, plus the batch pattern optimiser
  behind the ``analytic`` engine tier.
"""

from repro.core.pattern import (
    Action,
    ActionType,
    Pattern,
    Segment,
    pattern_signature,
)
from repro.core.builders import (
    PatternKind,
    build_pattern,
    pattern_pd,
    pattern_pdm,
    pattern_pdmv,
    pattern_pdmv_star,
    pattern_pdv,
    pattern_pdv_star,
)
from repro.core.matrices import (
    quadratic_form,
    recall_matrix,
    minimize_quadratic_form,
    optimal_beta,
    optimal_quadratic_value,
)
from repro.core.firstorder import (
    OverheadDecomposition,
    decompose_overhead,
    optimal_period_from_decomposition,
)
from repro.core.formulas import (
    OptimalPattern,
    optimal_pattern,
    optimize_all_patterns,
)
from repro.core.exact import exact_expected_time, exact_overhead
from repro.core.optimizer import (
    numeric_optimal_pattern,
    refine_integer_parameters,
)
from repro.core.batch import (
    BatchOptima,
    PlatformGrid,
    analytic_records,
    batch_decompose,
    batch_exact_overhead,
    batch_optimal_patterns,
    batch_refine_period,
    evaluate_analytic,
)
from repro.core.faulty_ops import (
    ExpectedOperationCosts,
    expected_operation_costs,
    refined_decomposition,
    refined_platform,
    relative_cost_inflation,
)
from repro.core.makespan import (
    MakespanEstimate,
    compare_makespans,
    estimate_makespan,
)
from repro.core.baselines import (
    BaselineComparison,
    compare_with_classical,
    daly_period,
    silent_only_period,
    young_period,
)

__all__ = [
    "Action",
    "ActionType",
    "Pattern",
    "Segment",
    "pattern_signature",
    "PatternKind",
    "build_pattern",
    "pattern_pd",
    "pattern_pdv_star",
    "pattern_pdv",
    "pattern_pdm",
    "pattern_pdmv_star",
    "pattern_pdmv",
    "recall_matrix",
    "quadratic_form",
    "minimize_quadratic_form",
    "optimal_beta",
    "optimal_quadratic_value",
    "OverheadDecomposition",
    "decompose_overhead",
    "optimal_period_from_decomposition",
    "OptimalPattern",
    "optimal_pattern",
    "optimize_all_patterns",
    "exact_expected_time",
    "exact_overhead",
    "numeric_optimal_pattern",
    "refine_integer_parameters",
    "BatchOptima",
    "PlatformGrid",
    "analytic_records",
    "batch_decompose",
    "batch_exact_overhead",
    "batch_optimal_patterns",
    "batch_refine_period",
    "evaluate_analytic",
    "ExpectedOperationCosts",
    "expected_operation_costs",
    "refined_decomposition",
    "refined_platform",
    "relative_cost_inflation",
    "MakespanEstimate",
    "estimate_makespan",
    "compare_makespans",
    "BaselineComparison",
    "compare_with_classical",
    "young_period",
    "daly_period",
    "silent_only_period",
]
