"""Section 5: expected costs when faults strike resilience operations.

The base analysis (Sections 3-4) assumes checkpoints, recoveries and
verifications are error-free.  Section 5 lifts that assumption for
fail-stop errors by solving Equations (30)-(33)::

    E(R_D) = p_RD (E[T^lost_RD] + E(R_D)) + (1 - p_RD) R_D
    E(R_M) = p_RM (E[T^lost_RM] + E(R_D) + E(R_M) + E(T^rec)) + (1 - p_RM) R_M
    E(C_D) = p_CD (E[T^lost_CD] + E(R_D) + E(R_M) + E(T^rec)
                   + E(C_M) + E(C_D)) + (1 - p_CD) C_D
    E(C_M) = p_CM (E[T^lost_CM] + E(R_D) + E(R_M) + E(T^rec)
                   + E(C_M)) + (1 - p_CM) C_M

where ``p_L = 1 - e^{-lambda_f L}`` and ``E(T^rec)`` is the expected
re-execution triggered by the fault (upper-bounded by the expected
pattern time, itself ``Theta(lambda^{-1/2})``).  Each equation is linear
in its unknown, so the system solves in closed form by substitution.

The punchline (verified by tests): every expected cost equals its
original cost plus ``O(sqrt(lambda))``, so the first-order optimal
patterns are unchanged.  :func:`refined_decomposition` substitutes the
expected costs into the ``(o_ef, o_rw)`` decomposition to quantify the
(tiny) shift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.firstorder import OverheadDecomposition, decompose_overhead
from repro.core.pattern import Pattern
from repro.errors.process import expected_time_lost, probability_of_error
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class ExpectedOperationCosts:
    """Expected durations of the four resilience operations under faults.

    Attributes mirror the plain costs; ``t_rec`` records the re-execution
    time assumed when a fault interrupts a checkpoint or memory recovery.
    """

    R_D: float
    R_M: float
    C_D: float
    C_M: float
    t_rec: float

    def as_costs_update(self) -> dict:
        """Keyword dict for :meth:`repro.platforms.platform.Platform.with_costs`."""
        return {
            "R_D": self.R_D,
            "R_M": self.R_M,
            "C_D": self.C_D,
            "C_M": self.C_M,
        }


def _solve_retry(cost: float, lam_f: float) -> float:
    """Expected time of an operation retried in place until fault-free.

    ``E = p (T^lost + E) + (1 - p) cost  =>  E = (p T^lost + (1-p) cost)/(1-p)``
    -- the Equation (30) shape (disk recovery restarts itself).
    """
    if lam_f == 0.0 or cost == 0.0:
        return cost
    p = probability_of_error(lam_f, cost)
    if p >= 1.0:
        raise ValueError(
            f"operation of length {cost} cannot complete: fault probability is 1"
        )
    lost = expected_time_lost(lam_f, cost)
    return (p * lost + (1.0 - p) * cost) / (1.0 - p)


def _solve_with_overhead(
    cost: float, lam_f: float, per_fault_overhead: float
) -> float:
    """Expected time when each fault additionally costs ``per_fault_overhead``.

    ``E = p (T^lost + X + E) + (1 - p) cost`` with ``X`` the extra work
    (recoveries + re-execution + partner checkpoints), the Equations
    (31)-(33) shape.
    """
    if lam_f == 0.0 or cost == 0.0:
        return cost
    p = probability_of_error(lam_f, cost)
    if p >= 1.0:
        raise ValueError(
            f"operation of length {cost} cannot complete: fault probability is 1"
        )
    lost = expected_time_lost(lam_f, cost)
    return (p * (lost + per_fault_overhead) + (1.0 - p) * cost) / (1.0 - p)


def expected_operation_costs(
    platform: Platform,
    t_rec: Optional[float] = None,
) -> ExpectedOperationCosts:
    """Solve Equations (30)-(33) for the expected operation costs.

    Parameters
    ----------
    platform:
        Rates and base costs.
    t_rec:
        Expected re-execution time after a fault during a checkpoint or a
        memory recovery.  Defaults to the expected time of the optimal
        ``PD`` pattern on this platform (the paper's upper bound:
        ``E(T^rec) <= E(P) = Theta(lambda^{-1/2})``).
    """
    lam_f = platform.lambda_f
    if t_rec is None:
        from repro.core.builders import PatternKind
        from repro.core.formulas import optimal_pattern

        if platform.lambda_total == 0.0:
            t_rec = 0.0
        else:
            opt = optimal_pattern(PatternKind.PD, platform)
            t_rec = opt.expected_pattern_time
    if t_rec < 0:
        raise ValueError(f"t_rec must be >= 0, got {t_rec}")

    # (30): E(R_D) -- self-contained retry loop.
    E_RD = _solve_retry(platform.R_D, lam_f)

    # (31): E(R_M) -- a fault escalates to a disk recovery + re-execution;
    # the E(R_M) self-reference inside the fault branch is what
    # _solve_with_overhead eliminates.
    E_RM = _solve_with_overhead(platform.R_M, lam_f, E_RD + t_rec)

    # (33): E(C_M) -- fault pays a full recovery, the re-execution and a
    # fresh memory checkpoint (the self-reference).
    E_CM = _solve_with_overhead(
        platform.C_M, lam_f, E_RD + E_RM + t_rec
    )

    # (32): E(C_D) -- like C_M plus the partner memory checkpoint.
    E_CD = _solve_with_overhead(
        platform.C_D, lam_f, E_RD + E_RM + t_rec + E_CM
    )

    return ExpectedOperationCosts(
        R_D=E_RD, R_M=E_RM, C_D=E_CD, C_M=E_CM, t_rec=t_rec
    )


def refined_platform(
    platform: Platform, t_rec: Optional[float] = None
) -> Platform:
    """Platform view whose costs are the Section-5 expected costs."""
    ops = expected_operation_costs(platform, t_rec)
    return platform.with_costs(**ops.as_costs_update())


def refined_decomposition(
    pattern: Pattern, platform: Platform, t_rec: Optional[float] = None
) -> OverheadDecomposition:
    """``(o_ef, o_rw)`` with expected (fault-aware) operation costs.

    The relative shift versus the plain decomposition is ``O(sqrt(lambda))``
    -- the Section-5 result that faults during resilience operations do
    not change the first-order optimal pattern.
    """
    return decompose_overhead(pattern, refined_platform(platform, t_rec))


def relative_cost_inflation(
    platform: Platform, t_rec: Optional[float] = None
) -> dict:
    """Per-operation relative inflation ``E(X)/X - 1`` (diagnostics).

    Returns a dict keyed by operation name; all entries are
    ``O(sqrt(lambda))`` under a large MTBF.
    """
    ops = expected_operation_costs(platform, t_rec)
    out = {}
    for name, base in (
        ("R_D", platform.R_D),
        ("R_M", platform.R_M),
        ("C_D", platform.C_D),
        ("C_M", platform.C_M),
    ):
        expected = getattr(ops, name)
        out[name] = math.inf if base == 0.0 else expected / base - 1.0
    return out
