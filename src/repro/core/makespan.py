"""Application-level makespan planning (Section 2.4).

For a job with base (failure-free, resilience-free) duration ``W_base``
executed as periodic patterns, the expected makespan is::

    W_final ~ E(P)/W * W_base = (1 + H(P)) * W_base

so pattern choice translates directly into wall-clock time and wasted
core-hours.  These helpers turn Table-1 optima into deployment-facing
numbers: expected makespan, wasted time, and number of patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.builders import PATTERN_ORDER, PatternKind
from repro.core.formulas import OptimalPattern, optimal_pattern
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class MakespanEstimate:
    """Expected makespan of a job under one optimised pattern.

    Attributes
    ----------
    kind:
        The pattern family used.
    W_base:
        Failure-free job duration (seconds).
    overhead:
        Expected pattern overhead ``H*``.
    """

    kind: PatternKind
    W_base: float
    overhead: float
    W_star: float

    @property
    def makespan(self) -> float:
        """Expected wall-clock completion time ``(1 + H*) W_base``."""
        return (1.0 + self.overhead) * self.W_base

    @property
    def wasted_time(self) -> float:
        """Expected time lost to resilience and rework."""
        return self.overhead * self.W_base

    @property
    def n_patterns(self) -> float:
        """Number of periodic patterns the job spans (``W_base / W*``)."""
        return self.W_base / self.W_star

    def wasted_node_hours(self, nodes: int) -> float:
        """Wasted node-hours at the given machine size."""
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        return nodes * self.wasted_time / 3600.0


def estimate_makespan(
    kind: PatternKind, platform: Platform, W_base: float
) -> MakespanEstimate:
    """Makespan estimate for one family on one platform."""
    if W_base <= 0:
        raise ValueError(f"W_base must be positive, got {W_base}")
    opt = optimal_pattern(kind, platform)
    return MakespanEstimate(
        kind=kind, W_base=W_base, overhead=opt.H_star, W_star=opt.W_star
    )


def compare_makespans(
    platform: Platform,
    W_base: float,
    kinds: Optional[Iterable[PatternKind]] = None,
) -> List[Dict[str, object]]:
    """One row per family: makespan, waste, pattern count, saving vs PD."""
    selected = tuple(kinds) if kinds is not None else PATTERN_ORDER
    base = estimate_makespan(PatternKind.PD, platform, W_base)
    rows: List[Dict[str, object]] = []
    for kind in selected:
        est = estimate_makespan(kind, platform, W_base)
        rows.append(
            {
                "pattern": kind.value,
                "makespan_hours": est.makespan / 3600.0,
                "wasted_hours": est.wasted_time / 3600.0,
                "n_patterns": est.n_patterns,
                "saving_vs_PD_hours": (base.makespan - est.makespan) / 3600.0,
            }
        )
    return rows
