"""Closed-form optimal parameters for the six families (Table 1).

For each family, the continuous optima ``n_bar*`` and ``m_bar*`` follow the
paper's Theorems 1-4; the integer optima are picked by evaluating the
convex product ``F = o_ef * o_rw`` at the integer neighbours (the paper's
prescription: ``max(1, floor)`` or ``ceil``, whichever gives smaller F).
The optimal period is then ``W* = sqrt(o_ef/o_rw)`` and the predicted
overhead ``H* = 2 sqrt(o_ef o_rw)``.

Rather than transcribing each family's final H* expression (which are
algebraic consequences), we recompute ``(o_ef, o_rw)`` from the built
pattern via :func:`repro.core.firstorder.decompose_overhead`, guaranteeing
internal consistency between the closed forms, the generic decomposition
and the simulator.  The continuous-H* expressions of Table 1 are also
provided (:func:`continuous_overhead`) and tested against the integer
solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache as _lru_cache
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.builders import (
    PATTERN_ORDER,
    PatternKind,
    build_pattern,
)
from repro.core.firstorder import OverheadDecomposition, decompose_overhead
from repro.core.pattern import Pattern
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class OptimalPattern:
    """The optimised configuration of one pattern family on one platform.

    Attributes
    ----------
    kind:
        The pattern family.
    pattern:
        The fully built :class:`Pattern` at the optimal period ``W*`` with
        the optimal integer ``n*``, ``m*`` and the optimal ``alpha``/``beta``.
    n, m:
        Optimal integer number of segments / chunks per segment.
    n_cont, m_cont:
        The continuous (relaxed) optima before integer rounding.
    decomposition:
        The ``(o_ef, o_rw)`` pair at the optimal integer shape.
    """

    kind: PatternKind
    pattern: Pattern
    n: int
    m: int
    n_cont: float
    m_cont: float
    decomposition: OverheadDecomposition

    @property
    def W_star(self) -> float:
        """Optimal pattern period (seconds of work)."""
        return self.pattern.W

    @property
    def H_star(self) -> float:
        """Predicted first-order overhead ``2 sqrt(o_ef o_rw)``."""
        return self.decomposition.optimal_overhead

    @property
    def expected_pattern_time(self) -> float:
        """First-order expected wall-clock time of one pattern."""
        return self.W_star * (1.0 + self.H_star)


# ---------------------------------------------------------------------------
# Continuous optima per family (Table 1 middle columns)
# ---------------------------------------------------------------------------

def continuous_n_star(kind: PatternKind, platform: Platform) -> float:
    """Continuous optimal number of segments ``n_bar*`` for a family.

    Families without memory checkpoints structurally have ``n = 1``.
    """
    lf, ls = platform.lambda_f, platform.lambda_s
    V, Vs, CM, CD, r = (
        platform.V,
        platform.V_star,
        platform.C_M,
        platform.C_D,
        platform.r,
    )
    if not kind.uses_memory_checkpoints:
        return 1.0
    if lf == 0.0:
        return math.inf
    if ls == 0.0:
        return 1.0
    if kind is PatternKind.PDM:
        return math.sqrt(2.0 * ls / lf * CD / (Vs + CM))
    if kind is PatternKind.PDMV_STAR:
        return math.sqrt(ls / lf * CD / CM)
    if kind is PatternKind.PDMV:
        g = (2.0 - r) / r
        denom = Vs - g * V + CM
        if denom <= 0:
            # Degenerate: partial verification so cheap/accurate it covers
            # everything; fall back to PDM-like sizing.
            denom = CM
        return math.sqrt(ls / lf * CD / denom)
    raise ValueError(f"unexpected kind {kind}")  # pragma: no cover


def continuous_m_star(kind: PatternKind, platform: Platform) -> float:
    """Continuous optimal number of chunks per segment ``m_bar*``.

    Families without intermediate verifications structurally have ``m = 1``.
    """
    lf, ls = platform.lambda_f, platform.lambda_s
    V, Vs, CM, CD, r = (
        platform.V,
        platform.V_star,
        platform.C_M,
        platform.C_D,
        platform.r,
    )
    if not kind.uses_intermediate_verifications:
        return 1.0
    if ls == 0.0:
        return 1.0
    if kind is PatternKind.PDV_STAR:
        return math.sqrt(ls / (ls + lf) * (CM + CD) / Vs)
    if kind is PatternKind.PDV:
        g = (2.0 - r) / r
        inner = ls / (ls + lf) * g * ((Vs + CM + CD) / V - g)
        return 2.0 - 2.0 / r + math.sqrt(max(inner, 0.0))
    if kind is PatternKind.PDMV_STAR:
        return math.sqrt(CM / Vs)
    if kind is PatternKind.PDMV:
        g = (2.0 - r) / r
        inner = g * ((Vs + CM) / V - g)
        return 2.0 - 2.0 / r + math.sqrt(max(inner, 0.0))
    raise ValueError(f"unexpected kind {kind}")  # pragma: no cover


def continuous_overhead(kind: PatternKind, platform: Platform) -> float:
    """Table-1 closed-form ``H*`` at the *continuous* (relaxed) optimum.

    These are the right-most column expressions of Table 1; they ignore
    integer rounding of ``n`` and ``m`` and drop ``O(lambda)`` terms, so
    they lower-bound the integer-rounded :attr:`OptimalPattern.H_star` by
    a hair.
    """
    lf, ls = platform.lambda_f, platform.lambda_s
    V, Vs, CM, CD, r = (
        platform.V,
        platform.V_star,
        platform.C_M,
        platform.C_D,
        platform.r,
    )
    g = (2.0 - r) / r
    if kind is PatternKind.PD:
        return 2.0 * math.sqrt((ls + lf / 2.0) * (Vs + CM + CD))
    if kind is PatternKind.PDV_STAR:
        return math.sqrt(2.0 * (ls + lf) * (CM + CD)) + math.sqrt(2.0 * ls * Vs)
    if kind is PatternKind.PDV:
        core = Vs - g * V + CM + CD
        return math.sqrt(2.0 * (ls + lf) * max(core, 0.0)) + math.sqrt(
            2.0 * ls * g * V
        )
    if kind is PatternKind.PDM:
        return 2.0 * math.sqrt(ls * (Vs + CM)) + math.sqrt(2.0 * lf * CD)
    if kind is PatternKind.PDMV_STAR:
        return (
            math.sqrt(2.0 * lf * CD)
            + math.sqrt(2.0 * ls * CM)
            + math.sqrt(2.0 * ls * Vs)
        )
    if kind is PatternKind.PDMV:
        core = Vs - g * V + CM
        return (
            math.sqrt(2.0 * lf * CD)
            + math.sqrt(2.0 * ls * max(core, 0.0))
            + math.sqrt(2.0 * ls * g * V)
        )
    raise ValueError(f"unexpected kind {kind}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Integer optimisation
# ---------------------------------------------------------------------------

def _integer_candidates(x: float, window: int = 1) -> List[int]:
    """Integer neighbours of a continuous optimum, clipped at 1.

    ``F`` is convex in each variable, so floor/ceil suffice; we include a
    one-wide window for numerical robustness.
    """
    if math.isinf(x):
        raise ValueError("continuous optimum is infinite; cannot round")
    lo = max(1, math.floor(x) - (window - 1))
    hi = max(1, math.ceil(x) + (window - 1))
    return list(range(lo, hi + 1))


def _conditional_n_star(
    kind: PatternKind, platform: Platform, m: int
) -> float:
    """Exact continuous minimiser of ``F(n)`` for a *fixed* integer ``m``.

    For two-level families, ``F(n) = (n a + C_D)(f ls / n + lf / 2)`` with
    ``a`` the per-segment error-free cost and ``f`` the segment
    re-execution factor; the minimiser is ``sqrt(2 C_D f ls / (a lf))``.
    This matters because Theorem 4's ``n_bar*`` (Eq. 27) assumes the
    *continuous* ``m_bar*``: after ``m`` is rounded to an integer, the
    conditional optimum can shift by more than one, and rounding Eq. 27
    alone could return a shape worse than plain ``PD``.
    """
    if not kind.uses_memory_checkpoints:
        return 1.0
    from repro.core.matrices import optimal_quadratic_value

    if kind is PatternKind.PDMV_STAR:
        V_eff, r_eff = platform.V_star, 1.0
    else:
        V_eff, r_eff = platform.V, platform.r
    f = optimal_quadratic_value(m, r_eff)
    a = (m - 1) * V_eff + platform.V_star + platform.C_M
    lf, ls = platform.lambda_f, platform.lambda_s
    if ls == 0.0 or platform.C_D == 0.0:
        return 1.0
    if lf == 0.0:
        return math.inf
    return math.sqrt(2.0 * platform.C_D * f * ls / (a * lf))


@_lru_cache(maxsize=4096)
def _unit_pattern(kind: PatternKind, n: int, m: int, r: float) -> Pattern:
    """Memoised placeholder-period pattern for the integer-shape search.

    ``Pattern`` is frozen/immutable, so the shared instance is safe; the
    optimiser probes the same ``(kind, n, m, r)`` shapes for every point
    of a sweep, and validation of the chunk vectors is the dominant cost
    of each probe.
    """
    return build_pattern(kind, 1.0, n=n, m=m, r=r)


def _evaluate_shape(
    kind: PatternKind, platform: Platform, n: int, m: int
) -> Tuple[OverheadDecomposition, Pattern]:
    """Build the family pattern with shape ``(n, m)`` and decompose it.

    The built pattern uses a placeholder period (1.0); only the shape
    matters for ``(o_ef, o_rw)``.
    """
    pat = _unit_pattern(kind, n, m, platform.r)
    # For starred families the intermediate verifications are guaranteed:
    # decompose against a platform view where V == V*.
    plat = platform
    if kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR):
        plat = platform.with_costs(V=platform.V_star, r=1.0)
    return decompose_overhead(pat, plat), pat


def optimal_pattern(
    kind: PatternKind, platform: Platform
) -> OptimalPattern:
    """Fully optimise one family on one platform (Table-1 realisation).

    Steps: continuous ``n_bar*, m_bar*`` -> integer neighbour search on the
    convex product ``F = o_ef * o_rw`` -> optimal period ``W* =
    sqrt(o_ef/o_rw)`` -> final :class:`Pattern` built at ``W*``.
    """
    if platform.lambda_total == 0.0:
        raise ValueError(
            "platform has zero error rates; no finite optimal pattern exists"
        )
    n_cont = continuous_n_star(kind, platform)
    m_cont = continuous_m_star(kind, platform)
    if math.isinf(n_cont):
        # lambda_f == 0: disk checkpoints are never needed; the paper's
        # model still requires one per pattern, so the optimum degenerates.
        # Cap the search at a large-but-finite value.
        n_cont = 1024.0

    # Candidate chunk counts: around the joint continuous optimum, plus
    # m = 1 (which makes the family degenerate to its verification-free
    # parent and guarantees we never do worse than it).
    m_candidates = set(_integer_candidates(m_cont, window=2))
    m_candidates.add(1)

    best: Optional[Tuple[float, int, int, OverheadDecomposition]] = None
    for m in sorted(m_candidates):
        n_bar = _conditional_n_star(kind, platform, m)
        if math.isinf(n_bar):
            n_bar = 1024.0
        for n in _integer_candidates(n_bar):
            decomp, _ = _evaluate_shape(kind, platform, n, m)
            F = decomp.o_ef * decomp.o_rw
            if best is None or F < best[0] - 1e-18:
                best = (F, n, m, decomp)
    assert best is not None
    _, n_star, m_star, decomp = best

    W_star = decomp.optimal_period
    if math.isinf(W_star):
        raise ValueError(
            "optimal period is infinite (o_rw == 0); check error rates"
        )
    pattern = build_pattern(kind, W_star, n=n_star, m=m_star, r=platform.r)
    return OptimalPattern(
        kind=kind,
        pattern=pattern,
        n=n_star,
        m=m_star,
        n_cont=n_cont,
        m_cont=m_cont,
        decomposition=decomp,
    )


def optimize_all_patterns(
    platform: Platform, kinds: Optional[Iterable[PatternKind]] = None
) -> Dict[PatternKind, OptimalPattern]:
    """Optimise every family (or a subset) on a platform, in Table-1 order."""
    selected = tuple(kinds) if kinds is not None else PATTERN_ORDER
    return {kind: optimal_pattern(kind, platform) for kind in selected}


def simulation_costs(kind: PatternKind, platform: Platform) -> Platform:
    """Platform view with the verification costs the family actually pays.

    Starred families run *guaranteed* verifications between chunks: the
    simulator must charge ``V*`` (recall 1) for them.  Plain families keep
    the platform's partial verification.  ``PD``/``PDM`` never execute
    intermediate verifications, so the view is irrelevant but harmless.
    """
    if kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR):
        return platform.with_costs(V=platform.V_star, r=1.0)
    return platform
