"""Numerical optimisation cross-validating the closed forms.

Two entry points:

* :func:`numeric_optimal_pattern` -- for a fixed family and integer shape
  ``(n, m)``, minimise the *exact* overhead over the period ``W`` with
  scipy, then (optionally) search the integer shape in a neighbourhood.
  The result should agree with the first-order closed forms up to
  ``O(lambda)`` whenever the platform MTBF is large; tests assert this.

* :func:`refine_integer_parameters` -- brute-force the integer shape over
  a window around the continuous optimum using the convex first-order
  product ``F = o_ef * o_rw`` (cheap) or the exact overhead (expensive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from scipy import optimize as _opt

from repro.core.builders import PatternKind, build_pattern
from repro.core.exact import exact_overhead
from repro.core.firstorder import decompose_overhead
from repro.core.formulas import (
    continuous_m_star,
    continuous_n_star,
    optimal_pattern,
)
from repro.platforms.platform import Platform


@dataclass(frozen=True)
class NumericOptimum:
    """Result of numerical pattern optimisation.

    Attributes
    ----------
    kind:
        Pattern family optimised.
    W:
        Numerically optimal period.
    n, m:
        Integer shape used.
    overhead:
        Exact expected overhead at the optimum.
    """

    kind: PatternKind
    W: float
    n: int
    m: int
    overhead: float


def _exact_overhead_at(
    kind: PatternKind, platform: Platform, W: float, n: int, m: int
) -> float:
    """Exact overhead of the family pattern with shape (n, m) at period W."""
    pat = build_pattern(kind, W, n=n, m=m, r=platform.r)
    guaranteed = kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR)
    return exact_overhead(pat, platform, guaranteed_intermediate=guaranteed)


def optimize_period(
    kind: PatternKind,
    platform: Platform,
    n: int,
    m: int,
    *,
    bracket_scale: float = 50.0,
) -> Tuple[float, float]:
    """Minimise the exact overhead over ``W`` for a fixed integer shape.

    Returns ``(W_opt, overhead_opt)``.  The search is bounded around the
    first-order optimum, which is always within a small constant factor of
    the true optimum when the MTBF is large.
    """
    pat = build_pattern(kind, 1.0, n=n, m=m, r=platform.r)
    plat_view = platform
    if kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR):
        plat_view = platform.with_costs(V=platform.V_star, r=1.0)
    W_guess = decompose_overhead(pat, plat_view).optimal_period
    if not math.isfinite(W_guess):
        raise ValueError("first-order period is not finite; cannot bracket")

    lo = W_guess / bracket_scale
    hi = W_guess * bracket_scale
    # Keep the exponentials in the exact recursion in a sane range.
    max_W = 50.0 / max(platform.lambda_total, 1e-300)
    hi = min(hi, max_W)
    if hi <= lo:
        raise ValueError(
            f"period bracket [{lo:.6g}, {hi:.6g}] is empty for {kind} "
            f"(n={n}, m={m}): the first-order optimum W*={W_guess:.6g}s "
            f"exceeds the exact recursion's stability cap "
            f"{max_W:.6g}s (= 50 / lambda_total), so the bracket cannot "
            "contain a minimum; check the platform rates and costs"
        )

    res = _opt.minimize_scalar(
        lambda W: _exact_overhead_at(kind, platform, W, n, m),
        bounds=(lo, hi),
        method="bounded",
        options={"xatol": max(W_guess * 1e-7, 1e-9)},
    )
    return float(res.x), float(res.fun)


def refine_integer_parameters(
    kind: PatternKind,
    platform: Platform,
    *,
    window: int = 2,
    use_exact: bool = False,
) -> Tuple[int, int]:
    """Search the integer shape ``(n, m)`` around the continuous optimum.

    Parameters
    ----------
    window:
        Half-width of the integer search window around the continuous
        optimum (clipped at 1).
    use_exact:
        When True, rank candidates by exact overhead at their numerically
        optimal period (slow); otherwise by the first-order product
        ``o_ef * o_rw`` (fast, and provably sufficient since F is convex).
    """
    n_cont = continuous_n_star(kind, platform)
    m_cont = continuous_m_star(kind, platform)
    if math.isinf(n_cont):
        n_cont = 1024.0

    def candidates(x: float) -> range:
        lo = max(1, math.floor(x) - window)
        hi = max(1, math.ceil(x) + window)
        return range(lo, hi + 1)

    # Always consider m = 1 (the verification-free parent family): like
    # :func:`repro.core.formulas.optimal_pattern`, the refinement must
    # never return a chunked shape worse than its own degenerate parent,
    # even when the continuous optimum sits far from 1.
    m_candidates = sorted({1, *candidates(m_cont)})

    best: Optional[Tuple[float, int, int]] = None
    for n in candidates(n_cont):
        if kind in (PatternKind.PD, PatternKind.PDV_STAR, PatternKind.PDV) and n != 1:
            continue
        for m in m_candidates:
            if kind in (PatternKind.PD, PatternKind.PDM) and m != 1:
                continue
            if use_exact:
                _, score = optimize_period(kind, platform, n, m)
            else:
                pat = build_pattern(kind, 1.0, n=n, m=m, r=platform.r)
                plat_view = platform
                if kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR):
                    plat_view = platform.with_costs(V=platform.V_star, r=1.0)
                d = decompose_overhead(pat, plat_view)
                score = d.o_ef * d.o_rw
            if best is None or score < best[0] - 1e-18:
                best = (score, n, m)
    assert best is not None
    return best[1], best[2]


def numeric_optimal_pattern(
    kind: PatternKind,
    platform: Platform,
    *,
    search_shape: bool = False,
) -> NumericOptimum:
    """Numerically optimal configuration of a family on a platform.

    By default uses the closed-form integer shape (Theorems 1-4) and only
    optimises the period numerically against the exact model; with
    ``search_shape=True`` the integer shape is also re-searched against
    the exact objective.
    """
    if search_shape:
        n, m = refine_integer_parameters(kind, platform, use_exact=True)
    else:
        opt = optimal_pattern(kind, platform)
        n, m = opt.n, opt.m
    W, H = optimize_period(kind, platform, n, m)
    return NumericOptimum(kind=kind, W=W, n=n, m=m, overhead=H)
