"""Online evaluation service: a long-lived daemon above the engines.

Every entry point before this package was a batch CLI: each caller paid
full process start-up, cold memo caches and one-shot dispatch.  The
service keeps the hot state resident and turns concurrent requests into
the batch shapes the engines are fastest at:

* :mod:`repro.service.scheduler` -- the micro-batching core.  In-flight
  ``/v1/evaluate`` requests are collected for a short window (or until a
  row budget fills), deduplicated by campaign cache key, and evaluated
  through the same batch paths the campaign executor uses -- analytic
  points per-family on :mod:`repro.core.batch`, simulate points in one
  packed mega-batch -- so identical concurrent queries coalesce to ONE
  computation and results stay **bit-identical** to solo CLI runs.
* :mod:`repro.service.memcache` -- a size-bounded in-memory LRU tier
  above the on-disk :class:`~repro.campaign.cache.ResultCache`.
* :mod:`repro.service.server` -- a stdlib ``asyncio`` HTTP/1.1 server
  exposing ``POST /v1/evaluate``, ``GET /v1/health``, ``GET /v1/stats``.
* :mod:`repro.service.client` -- a blocking stdlib ``http.client``
  client used by ``repro query``.
* :mod:`repro.service.protocol` -- the JSON request/response schema
  (scenario points in, result records out).

Start a daemon with ``repro serve``; query it with ``repro query`` or
plain ``curl``.
"""

from repro.service.autotune import (
    AdaptiveBatchController,
    AutotuneRunner,
    ControllerConfig,
)
from repro.service.client import EvaluateResult, ServiceClient, ServiceError
from repro.service.memcache import LRUCache, TieredCache
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.service.scheduler import MicroBatchScheduler
from repro.service.server import (
    BackgroundService,
    ServiceConfig,
    ServiceServer,
    run_service,
)

__all__ = [
    "AdaptiveBatchController",
    "AutotuneRunner",
    "BackgroundService",
    "ControllerConfig",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EvaluateResult",
    "LRUCache",
    "MicroBatchScheduler",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "TieredCache",
    "run_service",
]
