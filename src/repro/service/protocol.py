"""The service's JSON request/response schema.

``POST /v1/evaluate`` accepts one scenario point or a batch of them,
in the exact schema of :meth:`ScenarioPoint.to_dict` plus two
conveniences for hand-written queries:

* ``platform`` may be a Table-2 catalog name (``"hera"``) instead of a
  full parameter dict;
* ``mode`` defaults to ``"simulate"``, and simulate requests that omit
  the Monte-Carlo configuration get the same defaults as the
  ``repro simulate`` CLI (100 patterns x 50 runs, seed 20160601) -- a
  minimal ``curl`` body therefore reproduces the CLI's numbers
  bit-for-bit.

The response carries the campaign cache key and the result record for
every requested point, in request order.  Records are exactly what the
campaign executor would journal for the same point (free-form point
``labels`` merged in), so service output is interchangeable with batch
output.  Since protocol 2 a point whose evaluation fails yields a
``{"error": ...}`` record inside a 200 response instead of failing the
whole request with a 500 (the response's ``n_failed`` counts them).

``POST /v1/campaign`` (the jobs API) accepts a full campaign
specification -- ``{"spec": {...CampaignSpec...}, "client": "name"}``
or a bare spec object -- and registers it as a background job; see
:mod:`repro.service.jobs`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.spec import (
    CampaignSpec,
    ScenarioPoint,
    platform_from_dict,
    platform_to_dict,
)

#: Bumped when the request/response schema changes incompatibly.
#: 2: per-point ``error`` records replaced the all-or-nothing 500 on
#: ``/v1/evaluate``; the jobs endpoints (``/v1/campaign``, ``/v1/jobs``)
#: joined the surface.
#: 3: admission control joined the surface -- ``/v1/evaluate`` may
#: answer ``429`` (with a ``Retry-After`` header and an exact
#: ``retry_after_s`` in the body) or ``503`` when the daemon sheds
#: load; the client identifies itself via the ``X-Repro-Client``
#: header; ``POST /v1/campaign`` accepts an ``idempotency_key`` making
#: resubmission safe.
#: 4: observability joined the surface -- ``/v1/evaluate`` responses
#: carry a ``trace_id`` (echoing ``X-Repro-Trace-Id`` when the client
#: supplied one) and the daemon serves ``GET /metrics`` (Prometheus
#: text) and ``GET /v1/trace[/<id>]`` (recent request span timelines).
#: Additive: protocol-3 clients are unaffected.
PROTOCOL_VERSION = 4

#: Default client identity for job submissions that do not name one;
#: fair-share treats every anonymous submitter as one client.
DEFAULT_CLIENT = "anonymous"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Monte-Carlo defaults for simulate requests that omit them; these
#: mirror the ``repro simulate`` CLI so minimal queries match it.
DEFAULT_N_PATTERNS = 100
DEFAULT_N_RUNS = 50
DEFAULT_SEED = 20160601

#: Upper bound on points per request (matches the batch layers' caps).
MAX_POINTS_PER_REQUEST = 4096


class ProtocolError(ValueError):
    """A malformed request; the server answers 400 with the message."""


def point_from_request(data: Any) -> ScenarioPoint:
    """Build a :class:`ScenarioPoint` from one request item.

    Applies the documented conveniences (catalog platform names, CLI
    Monte-Carlo defaults) and validates eagerly -- including the
    platform parameter vector -- so schema mistakes fail the request
    with a message instead of failing the engine batch mid-flight.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(
            f"each point must be a JSON object, got {type(data).__name__}"
        )
    desc = dict(data)
    platform = desc.get("platform")
    if isinstance(platform, str):
        from repro.platforms.catalog import get_platform

        try:
            desc["platform"] = platform_to_dict(get_platform(platform))
        except KeyError as exc:
            raise ProtocolError(str(exc).strip('"')) from None
    desc.setdefault("mode", "simulate")
    if desc["mode"] == "simulate" and desc.get("engine") != "analytic":
        desc.setdefault("n_patterns", DEFAULT_N_PATTERNS)
        desc.setdefault("n_runs", DEFAULT_N_RUNS)
        desc.setdefault("seed", DEFAULT_SEED)
    try:
        point = ScenarioPoint.from_dict(desc)
        platform_from_dict(point.platform)  # validate the parameter vector
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid scenario point: {exc}") from None
    return point


def parse_evaluate_body(raw: bytes) -> List[ScenarioPoint]:
    """Parse a ``POST /v1/evaluate`` body into scenario points.

    Accepts ``{"points": [...]}``, a bare list of points, or one bare
    point object.
    """
    try:
        data = json.loads(raw.decode("utf-8") if raw else "")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"request body is not valid JSON: {exc}"
        ) from None
    if isinstance(data, Mapping):
        items = data.get("points", [data] if data else [])
    elif isinstance(data, list):
        items = data
    else:
        raise ProtocolError(
            "evaluate request must be a point object, a list of points, "
            'or {"points": [...]}'
        )
    if not isinstance(items, list):
        raise ProtocolError('"points" must be a list of point objects')
    if not items:
        raise ProtocolError("evaluate request contains no points")
    if len(items) > MAX_POINTS_PER_REQUEST:
        raise ProtocolError(
            f"evaluate request has {len(items)} points; the per-request "
            f"cap is {MAX_POINTS_PER_REQUEST} (split the batch)"
        )
    return [point_from_request(item) for item in items]


def evaluate_response(
    keys: Sequence[str],
    records: Sequence[Dict[str, Any]],
    n_failed: int = 0,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``/v1/evaluate`` response payload."""
    payload = {
        "protocol": PROTOCOL_VERSION,
        "keys": list(keys),
        "records": list(records),
        "n_failed": int(n_failed),
    }
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload


def parse_campaign_body(
    raw: bytes,
) -> Tuple[CampaignSpec, str, Optional[str]]:
    """Parse a ``POST /v1/campaign`` body.

    Returns ``(spec, client, idempotency_key)``.  Accepts
    ``{"spec": {...}, "client": "name", "idempotency_key": "..."}`` or
    a bare :meth:`CampaignSpec.to_dict` object (detected by its
    ``scenario`` field).  The spec is validated eagerly -- including
    the scenario name, via
    :func:`repro.campaign.registry.get_scenario` -- so a bad
    submission fails the request instead of failing the job later.
    The optional idempotency key (protocol 3) lets a client retry a
    submission without double-creating the job.
    """
    try:
        data = json.loads(raw.decode("utf-8") if raw else "")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, Mapping):
        raise ProtocolError(
            'campaign request must be {"spec": {...}, "client": ...} '
            "or a bare campaign spec object"
        )
    client: Any = DEFAULT_CLIENT
    idempotency_key: Any = None
    if "spec" in data and "scenario" not in data:
        client = data.get("client", DEFAULT_CLIENT)
        idempotency_key = data.get("idempotency_key")
        spec_data = data["spec"]
        if not isinstance(spec_data, Mapping):
            raise ProtocolError('"spec" must be a campaign spec object')
    else:
        spec_data = data
    if not isinstance(client, str) or not client:
        raise ProtocolError('"client" must be a non-empty string')
    if idempotency_key is not None and (
        not isinstance(idempotency_key, str) or not idempotency_key
    ):
        raise ProtocolError(
            '"idempotency_key" must be a non-empty string when given'
        )
    try:
        spec = CampaignSpec.from_dict(spec_data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid campaign spec: {exc}") from None
    from repro.campaign.registry import scenario_names

    if spec.scenario not in scenario_names():
        raise ProtocolError(
            f"unknown scenario {spec.scenario!r}; available: "
            f"{', '.join(scenario_names())}"
        )
    return spec, client, idempotency_key
