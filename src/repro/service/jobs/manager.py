"""The job state machine and its fair-share execution pump.

A **job** is one submitted :class:`~repro.campaign.spec.CampaignSpec`
running server-side: expanded into scenario points through the scenario
registry, carved into makespan-ordered buckets
(:func:`~repro.service.jobs.fair_share.plan_job_buckets`), and pushed
through the daemon's shared :class:`~repro.service.scheduler.
MicroBatchScheduler` -- the same coalescing, caching, micro-batching
pipeline that serves interactive ``/v1/evaluate`` traffic.  Job points
and interactive points ride the same mega-batches and the same tiered
cache, and every record is **bit-identical** to a solo
``repro campaign run`` of the same spec.

States move ``queued -> running -> done | failed | cancelled``.  A job
is ``failed`` when it ran to completion but at least one point's
evaluation raised (the per-point messages are kept and streamed as
``{"error": ...}`` records); ``cancelled`` drops the not-yet-dispatched
buckets while letting in-flight buckets finish into the journal.

Every resolved record is appended to the job's campaign-format JSONL
journal *before* it is visible to result streaming, so a daemon killed
mid-job loses nothing that was ever streamed: on restart the manager
reloads ``spec.json``, preloads the journal, and re-queues only the
missing points (:class:`~repro.service.jobs.store.JobStore`).

The pump dispatches at most ``max_inflight`` buckets at a time, always
from the least-served client (:class:`~repro.service.jobs.fair_share.
FairShare`): two clients' campaigns interleave bucket by bucket rather
than queueing behind each other, while the micro-batcher underneath
still packs whatever mix is in flight into dense mega-batches.
"""

from __future__ import annotations

import asyncio
import secrets
import time
from collections import deque
from contextlib import suppress
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set

from repro.campaign.executor import Journal
from repro.campaign.spec import CampaignSpec, ScenarioPoint
from repro.service.jobs.fair_share import (
    Bucket,
    FairShare,
    bucket_rows,
    plan_job_buckets,
)
from repro.service.jobs.store import JobStore
from repro.service.obs import Observability
from repro.service.scheduler import MicroBatchScheduler

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Default cap on concurrently dispatched buckets across all jobs.  Two
#: keeps one bucket evaluating while the next collects into the
#: micro-batcher (mirroring the scheduler's two eval workers) without
#: flooding the queue so far ahead that fair-share loses its grip.
DEFAULT_MAX_INFLIGHT = 2


def new_job_id() -> str:
    """A fresh job id (``j`` + 12 hex chars, the store's dir-name shape)."""
    return "j" + secrets.token_hex(6)


@dataclass
class Job:
    """One submitted campaign and everything known about its progress."""

    job_id: str
    client: str
    spec: CampaignSpec
    seq: int
    created: float
    state: str = "queued"
    points: List[ScenarioPoint] = field(default_factory=list)
    keys: List[str] = field(default_factory=list)
    #: Raw (label-free) records per unique cache key -- the journal's
    #: view of the job.
    resolved: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Per-unique-key evaluation error messages.
    failed: Dict[str, str] = field(default_factory=dict)
    #: Not-yet-dispatched buckets, in makespan (LPT) order.
    buckets: Deque[Bucket] = field(default_factory=deque)
    #: Buckets dispatched and not yet settled.
    inflight: int = 0
    started: Optional[float] = None
    finished: Optional[float] = None
    #: Job-level failure message (spec expansion died, scheduler gone).
    error: Optional[str] = None
    journal: Optional[Journal] = None
    #: Keys already appended to the journal (preloaded + this run).
    journaled: Set[str] = field(default_factory=set)
    #: Unique keys answered straight from the job's own journal.
    n_from_journal: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def runnable(self) -> bool:
        return self.state in ("queued", "running") and bool(self.buckets)

    def point_done(self, i: int) -> bool:
        """Whether point ``i`` has a streamable record (result or error)."""
        key = self.keys[i]
        return key in self.resolved or key in self.failed

    def progress(self) -> Dict[str, int]:
        """Point-level progress counters (duplicates counted per point)."""
        n_done = 0
        n_failed = 0
        for key in self.keys:
            if key in self.resolved:
                n_done += 1
            elif key in self.failed:
                n_failed += 1
        return {
            "points": len(self.points),
            "done": n_done,
            "failed": n_failed,
            "pending": len(self.points) - n_done - n_failed,
        }


class JobManager:
    """Registry, pump and result assembly for daemon-side jobs.

    Parameters
    ----------
    scheduler:
        The daemon's shared micro-batch scheduler; all job evaluation
        flows through :meth:`~repro.service.scheduler.
        MicroBatchScheduler.resolve`.
    store:
        Optional :class:`JobStore` (or jobs-dir path).  Without one,
        jobs are memory-only: fully functional but lost on restart.
    max_inflight:
        Cap on concurrently dispatched buckets across all jobs.
    pack_rows:
        Row budget used to carve jobs into buckets; defaults to the
        scheduler's own budget so job buckets fill its mega-batches.
    job_ttl_days:
        Age (days since finishing) past which terminal jobs are
        garbage-collected -- removed from memory and, when persisted,
        from the jobs dir.  ``None`` keeps jobs forever (the historical
        behaviour, which let ``--jobs-dir`` accumulate without bound).
        Queued/running jobs are never collected.
    """

    #: How often the background GC sweep runs when a TTL is set.
    GC_INTERVAL_S = 60.0

    def __init__(
        self,
        scheduler: MicroBatchScheduler,
        store: Optional[JobStore] = None,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        pack_rows: Optional[int] = None,
        job_ttl_days: Optional[float] = None,
        obs: Optional["Observability"] = None,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if job_ttl_days is not None and job_ttl_days < 0:
            raise ValueError(
                f"job_ttl_days must be >= 0, got {job_ttl_days}"
            )
        if isinstance(store, str):
            store = JobStore(store)
        self._scheduler = scheduler
        self._store = store
        #: Observability hub: job lifecycle transitions become
        #: structured log events under ``repro serve --log-json``.
        self._obs = obs
        self.max_inflight = int(max_inflight)
        self.pack_rows = int(
            scheduler.pack_rows if pack_rows is None else pack_rows
        )
        self.job_ttl_days = (
            float(job_ttl_days) if job_ttl_days is not None else None
        )
        self._jobs: Dict[str, Job] = {}
        #: ``(client, idempotency_key) -> job_id`` for safe resubmits.
        self._idempotency: Dict[tuple, str] = {}
        self._fair = FairShare()
        self._seq = 0
        self._inflight_total = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._gc_task: Optional[asyncio.Task] = None
        self._bucket_tasks: "set[asyncio.Task]" = set()
        self._counters: Dict[str, int] = {
            "submitted": 0,   # jobs accepted via submit()
            "resumed": 0,     # non-terminal jobs re-queued at startup
            "deduplicated": 0,  # submits answered by an existing job
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "buckets_dispatched": 0,
            "gc_collected": 0,  # terminal jobs removed by the TTL sweep
        }

    @property
    def running(self) -> bool:
        return self._pump_task is not None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Load persisted jobs, resume the unfinished, start the pump."""
        if self.running:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        if self._store is not None:
            for loaded in self._store.load_all():
                self._restore(loaded)
        self._pump_task = self._loop.create_task(self._pump())
        if self.job_ttl_days is not None:
            self._gc_task = self._loop.create_task(self._gc_loop())
        self._wake.set()

    async def close(self) -> None:
        """Stop the pump, let in-flight buckets settle, close journals."""
        if self._gc_task is not None:
            self._gc_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._gc_task
            self._gc_task = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._pump_task
            self._pump_task = None
        if self._bucket_tasks:
            await asyncio.gather(
                *list(self._bucket_tasks), return_exceptions=True
            )
        for job in self._jobs.values():
            if job.journal is not None:
                job.journal.close()
                job.journal = None

    def _restore(self, loaded: Dict[str, Any]) -> None:
        """Re-register one persisted job (terminal or resumable)."""
        envelope = loaded["envelope"]
        spec: CampaignSpec = loaded["spec"]
        job = Job(
            job_id=loaded["job_id"],
            client=str(envelope.get("client", "anonymous")),
            spec=spec,
            seq=self._next_seq(),
            created=float(envelope.get("created", 0.0)),
        )
        idem = envelope.get("idempotency_key")
        if idem:
            self._idempotency[(job.client, str(idem))] = job.job_id
        try:
            job.points = spec.points()
            from repro.campaign.cache import cache_key

            job.keys = [cache_key(p) for p in job.points]
        except Exception as exc:  # registry drift, bad params
            job.state = "failed"
            job.error = f"spec no longer expands: {exc}"
            job.finished = time.time()
            self._jobs[job.job_id] = job
            return
        marker = loaded.get("state")
        journal = self._store.open_journal(job.job_id)
        job.resolved = dict(journal.existing)
        job.journaled = set(journal.existing)
        job.n_from_journal = len(journal.existing)
        if marker is not None and marker.get("state") in TERMINAL_STATES:
            # Terminal: keep the journal's records for result streaming
            # but release the append handle.
            journal.close()
            job.state = str(marker["state"])
            job.started = marker.get("started")
            job.finished = marker.get("finished")
            job.error = marker.get("error")
            job.failed = {
                str(k): str(v)
                for k, v in (marker.get("errors") or {}).items()
            }
            self._jobs[job.job_id] = job
            return
        job.journal = journal
        self._plan(job)
        self._jobs[job.job_id] = job
        self._counters["resumed"] += 1
        if not job.buckets:
            # Everything was already journaled when the daemon died
            # between the last append and the terminal marker.
            self._maybe_finish(job)

    # -- submission and queries ---------------------------------------------

    async def submit(
        self,
        spec: CampaignSpec,
        client: str,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Register a campaign as a background job and wake the pump.

        Expands the spec eagerly (a generator error fails the
        submission, not the job), persists ``spec.json``, opens the
        journal, and queues the missing points' buckets.

        ``idempotency_key`` makes resubmission safe: a second submit
        carrying the same ``(client, key)`` pair returns the job the
        first one created instead of starting a duplicate -- the
        contract that lets the HTTP client retry ``POST /v1/campaign``
        over a dead keep-alive connection without double-submitting.
        """
        if not self.running:
            raise RuntimeError(
                "job manager is not running; call start() first"
            )
        if idempotency_key:
            existing_id = self._idempotency.get(
                (client, idempotency_key)
            )
            existing = (
                self._jobs.get(existing_id)
                if existing_id is not None
                else None
            )
            if existing is not None:
                self._counters["deduplicated"] += 1
                return existing
        points = spec.points()
        if not points:
            raise ValueError("campaign has no scenario points")
        from repro.campaign.cache import cache_key

        job = Job(
            job_id=new_job_id(),
            client=client,
            spec=spec,
            seq=self._next_seq(),
            created=time.time(),
            points=points,
            keys=[cache_key(p) for p in points],
        )
        if self._store is not None:
            envelope = {
                "spec": spec.to_dict(),
                "client": client,
                "created": job.created,
                "fingerprint": spec.fingerprint(),
            }
            if idempotency_key:
                envelope["idempotency_key"] = idempotency_key
            self._store.save_spec(job.job_id, envelope)
            journal = self._store.open_journal(job.job_id)
            job.journal = journal
            job.resolved = dict(journal.existing)
            job.journaled = set(journal.existing)
            job.n_from_journal = len(journal.existing)
        self._plan(job)
        self._jobs[job.job_id] = job
        if idempotency_key:
            self._idempotency[(client, idempotency_key)] = job.job_id
        self._counters["submitted"] += 1
        if self._obs is not None:
            self._obs.event(
                "job_submitted",
                job_id=job.job_id,
                client=client,
                scenario=spec.scenario,
                n_points=len(job.keys),
            )
        if not job.buckets:
            self._maybe_finish(job)
        self._wake.set()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def list_jobs(self, client: Optional[str] = None) -> List[Job]:
        """All known jobs in submission order, optionally per client."""
        jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
        if client is not None:
            jobs = [j for j in jobs if j.client == client]
        return jobs

    async def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job: drop queued buckets, let in-flight ones land.

        Terminal jobs are returned unchanged (cancel is idempotent);
        unknown ids return ``None``.
        """
        job = self._jobs.get(job_id)
        if job is None or job.terminal:
            return job
        job.buckets.clear()
        job.state = "cancelled"
        job.finished = time.time()
        self._counters["cancelled"] += 1
        if self._obs is not None:
            self._obs.event(
                "job_cancelled", job_id=job.job_id, client=job.client
            )
        self._persist_terminal(job)
        if job.inflight == 0:
            self._release_journal(job)
        self._wake.set()
        return job

    def job_doc(self, job: Job) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` JSON document."""
        doc: Dict[str, Any] = {
            "id": job.job_id,
            "name": job.spec.name,
            "scenario": job.spec.scenario,
            "fingerprint": job.spec.fingerprint(),
            "client": job.client,
            "state": job.state,
            "created": job.created,
            "started": job.started,
            "finished": job.finished,
            "progress": job.progress(),
            "buckets_pending": len(job.buckets),
            "buckets_inflight": job.inflight,
            "n_from_journal": job.n_from_journal,
        }
        if job.error is not None:
            doc["error"] = job.error
        return doc

    def results_page(
        self,
        job: Job,
        offset: int = 0,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """A page of finished records, streaming in **point order**.

        Records are returned from ``offset`` up to the first unfinished
        point (or ``limit``), with point ``labels`` merged exactly as
        campaign assembly does; failed points yield
        ``{**labels, "error": msg}``.  ``next_offset`` is where the
        client polls next, so concatenating pages reconstructs
        ``repro campaign run``'s record list byte for byte.
        """
        n = len(job.points)
        if offset < 0 or offset > n:
            raise ValueError(
                f"offset must be in [0, {n}], got {offset}"
            )
        records: List[Dict[str, Any]] = []
        i = offset
        while i < n and (limit is None or len(records) < limit):
            if not job.point_done(i):
                break
            key, point = job.keys[i], job.points[i]
            if key in job.resolved:
                records.append(
                    {**dict(point.labels), **job.resolved[key]}
                )
            else:
                records.append(
                    {**dict(point.labels), "error": job.failed[key]}
                )
            i += 1
        return {
            "id": job.job_id,
            "state": job.state,
            "offset": offset,
            "next_offset": i,
            "total": n,
            "records": records,
            "exhausted": job.terminal and i >= n,
        }

    # -- garbage collection --------------------------------------------------

    def gc(self, now: Optional[float] = None) -> List[str]:
        """Collect terminal jobs older than the TTL; returns their ids.

        A job is collectable when it is terminal, has no in-flight
        buckets, and finished more than ``job_ttl_days`` ago (jobs
        restored without a ``finished`` timestamp fall back to their
        creation time).  Queued/running jobs are never touched.  No-op
        when no TTL is configured.
        """
        if self.job_ttl_days is None:
            return []
        now = time.time() if now is None else now
        cutoff = now - self.job_ttl_days * 86400.0
        collected: List[str] = []
        for job_id, job in list(self._jobs.items()):
            if not job.terminal or job.inflight > 0:
                continue
            age_ref = job.finished if job.finished else job.created
            if age_ref >= cutoff:
                continue
            self._release_journal(job)
            del self._jobs[job_id]
            idem_keys = [
                k for k, v in self._idempotency.items() if v == job_id
            ]
            for k in idem_keys:
                del self._idempotency[k]
            if self._store is not None:
                self._store.delete_job(job_id)
            collected.append(job_id)
        self._counters["gc_collected"] += len(collected)
        return collected

    async def _gc_loop(self) -> None:
        while True:
            await asyncio.sleep(self.GC_INTERVAL_S)
            self.gc()

    def stats(self) -> Dict[str, Any]:
        """Manager counters for the ``/v1/stats`` payload."""
        by_state: Dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "config": {
                "max_inflight": self.max_inflight,
                "pack_rows": self.pack_rows,
                "job_ttl_days": self.job_ttl_days,
                "jobs_dir": (
                    self._store.root if self._store is not None else None
                ),
            },
            "counters": dict(self._counters),
            "jobs": by_state,
            "fair_share": self._fair.stats(),
        }

    # -- the pump -----------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _plan(self, job: Job) -> None:
        """Queue buckets for the job's not-yet-settled unique points."""
        todo: List = []
        seen: Set[str] = set()
        for key, point in zip(job.keys, job.points):
            if key in seen or key in job.resolved or key in job.failed:
                continue
            seen.add(key)
            todo.append((key, point))
        job.buckets = deque(plan_job_buckets(todo, self.pack_rows))

    async def _pump(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._inflight_total < self.max_inflight:
                runnable = [
                    j for j in self._jobs.values() if j.runnable
                ]
                job = self._fair.pick(runnable)
                if job is None:
                    break
                bucket = job.buckets.popleft()
                if job.state == "queued":
                    job.state = "running"
                    job.started = time.time()
                job.inflight += 1
                self._inflight_total += 1
                self._fair.charge(job.client, bucket_rows(bucket))
                self._counters["buckets_dispatched"] += 1
                task = self._loop.create_task(
                    self._run_bucket(job, bucket)
                )
                self._bucket_tasks.add(task)
                task.add_done_callback(self._bucket_tasks.discard)

    async def _run_bucket(self, job: Job, bucket: Bucket) -> None:
        try:
            _, outcomes = await self._scheduler.resolve(
                [p for _, p in bucket]
            )
            for key, outcome in outcomes.items():
                if isinstance(outcome, BaseException):
                    job.failed[key] = str(outcome)
                else:
                    # Journal BEFORE exposing through `resolved`: a
                    # record visible to result streaming is always on
                    # disk, so a crash never un-streams anything.
                    if (
                        job.journal is not None
                        and key not in job.journaled
                    ):
                        job.journal.append(key, outcome)
                        job.journaled.add(key)
                    job.resolved[key] = outcome
        except Exception as exc:  # scheduler torn down mid-dispatch
            if not job.terminal:
                job.buckets.clear()
                job.state = "failed"
                job.error = f"bucket dispatch failed: {exc}"
                job.finished = time.time()
                self._counters["failed"] += 1
                self._persist_terminal(job)
        finally:
            job.inflight -= 1
            self._inflight_total -= 1
            self._maybe_finish(job)
            if job.terminal and job.inflight == 0:
                self._release_journal(job)
            self._wake.set()

    def _maybe_finish(self, job: Job) -> None:
        """Move a drained job to its terminal state and persist it."""
        if job.terminal or job.inflight > 0 or job.buckets:
            return
        settled = all(
            k in job.resolved or k in job.failed for k in job.keys
        )
        if not settled:
            return
        if job.state == "queued":
            # Fully answered by journal/cache before any dispatch.
            job.started = job.started or time.time()
        job.finished = time.time()
        if job.failed:
            job.state = "failed"
            job.error = (
                f"{len(job.failed)} point(s) failed evaluation"
            )
            self._counters["failed"] += 1
        else:
            job.state = "done"
            self._counters["done"] += 1
        if self._obs is not None:
            self._obs.event(
                "job_finished",
                job_id=job.job_id,
                client=job.client,
                state=job.state,
                n_points=len(job.keys),
                n_failed=len(job.failed),
                duration_s=(
                    round(job.finished - job.started, 3)
                    if job.started
                    else None
                ),
            )
        self._persist_terminal(job)
        self._release_journal(job)

    def _persist_terminal(self, job: Job) -> None:
        if self._store is None:
            return
        self._store.save_state(
            job.job_id,
            {
                "state": job.state,
                "started": job.started,
                "finished": job.finished,
                "error": job.error,
                "errors": dict(job.failed),
                "progress": job.progress(),
            },
        )

    @staticmethod
    def _release_journal(job: Job) -> None:
        if job.journal is not None:
            job.journal.close()
            job.journal = None
