"""HTTP route handlers for the jobs API.

Kept out of :mod:`repro.service.server` so the server core stays a
transport: it parses the request line, splits the query string, and
asks :class:`JobsApi` whether the path is a jobs route.  All payload
shapes live here, next to the manager calls that fill them.

Routes (all JSON, protocol 2):

* ``POST /v1/campaign`` -- submit a campaign spec; answers the new
  job's document immediately (the job runs in the background).
* ``GET /v1/jobs[?client=name]`` -- list job documents.
* ``GET /v1/jobs/<id>`` -- one job's document (state, progress).
* ``GET /v1/jobs/<id>/results[?offset=N&limit=M]`` -- stream finished
  records in point order; poll ``next_offset`` until ``exhausted``.
* ``DELETE /v1/jobs/<id>`` -- cancel (idempotent on terminal jobs).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.jobs.manager import Job, JobManager
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_campaign_body,
)

#: Default and maximum page size for result streaming.
DEFAULT_RESULTS_LIMIT = 256
MAX_RESULTS_LIMIT = 4096


def _int_param(
    query: Mapping[str, str], name: str, default: int
) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ProtocolError(
            f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None


class JobsApi:
    """Dispatch jobs-API requests against one :class:`JobManager`."""

    def __init__(self, manager: JobManager):
        self.manager = manager

    async def handle(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Answer a jobs route, or ``None`` when the path is not ours."""
        try:
            if path == "/v1/campaign":
                if method != "POST":
                    return 405, {"error": f"{path} accepts POST only"}
                return await self._submit(body)
            if path == "/v1/jobs":
                if method != "GET":
                    return 405, {"error": f"{path} accepts GET only"}
                return self._list(query)
            if path.startswith("/v1/jobs/"):
                return await self._job_route(method, path, query)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        return None

    # -- handlers -----------------------------------------------------------

    async def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        spec, client, idempotency_key = parse_campaign_body(body)
        try:
            job = await self.manager.submit(
                spec, client, idempotency_key=idempotency_key
            )
        except (ValueError, KeyError) as exc:
            # Unknown scenario (KeyError from the registry) or a
            # generator that rejected its params.
            return 400, {"error": f"campaign does not expand: {exc}"}
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "job": self.manager.job_doc(job),
        }

    def _list(
        self, query: Mapping[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        jobs = self.manager.list_jobs(client=query.get("client"))
        return 200, {
            "protocol": PROTOCOL_VERSION,
            "jobs": [self.manager.job_doc(j) for j in jobs],
        }

    async def _job_route(
        self, method: str, path: str, query: Mapping[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        job = self.manager.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if tail == "":
            if method == "GET":
                return 200, {
                    "protocol": PROTOCOL_VERSION,
                    "job": self.manager.job_doc(job),
                }
            if method == "DELETE":
                cancelled = await self.manager.cancel(job_id)
                return 200, {
                    "protocol": PROTOCOL_VERSION,
                    "job": self.manager.job_doc(cancelled),
                }
            return 405, {"error": f"{path} accepts GET or DELETE"}
        if tail == "results":
            if method != "GET":
                return 405, {"error": f"{path} accepts GET only"}
            return self._results(job, query)
        return 404, {"error": f"unknown jobs path {path!r}"}

    def _results(
        self, job: Job, query: Mapping[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        offset = _int_param(query, "offset", 0)
        limit = _int_param(query, "limit", DEFAULT_RESULTS_LIMIT)
        if not 1 <= limit <= MAX_RESULTS_LIMIT:
            raise ProtocolError(
                f'"limit" must be in [1, {MAX_RESULTS_LIMIT}], '
                f"got {limit}"
            )
        try:
            page = self.manager.results_page(
                job, offset=offset, limit=limit
            )
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        return 200, {"protocol": PROTOCOL_VERSION, **page}
