"""Campaign-as-a-service: journaled background jobs on the daemon.

``POST /v1/campaign`` turns a full
:class:`~repro.campaign.spec.CampaignSpec` into a server-side **job**:
the spec is expanded through the scenario registry, journaled to a
JSONL file in the exact ``campaign run`` format, and executed in the
background through the same coalescing
:class:`~repro.service.scheduler.MicroBatchScheduler` that serves
interactive ``/v1/evaluate`` traffic -- one batching pipeline, one
tiered cache, and records **bit-identical** to a solo
``repro campaign run`` of the same spec.

* :mod:`repro.service.jobs.manager` -- the :class:`JobManager` state
  machine (queued -> running -> done/failed/cancelled), the fair-share
  pump, progress counters and offset-based result streaming.
* :mod:`repro.service.jobs.store` -- the on-disk layout
  (``<jobs-dir>/<job-id>/{spec.json,journal.jsonl,state.json}``) that
  lets jobs survive a daemon restart and resume from their journals.
* :mod:`repro.service.jobs.fair_share` -- least-served-client job
  picking plus makespan-aware (LPT) bucket ordering over the campaign
  executor's mega-batch planner.
* :mod:`repro.service.jobs.api` -- the HTTP route handlers
  (``/v1/campaign``, ``/v1/jobs``...), kept out of the server core.
"""

from repro.service.jobs.fair_share import (
    FairShare,
    order_buckets,
    plan_job_buckets,
)
from repro.service.jobs.manager import Job, JobManager
from repro.service.jobs.store import JobStore

__all__ = [
    "FairShare",
    "Job",
    "JobManager",
    "JobStore",
    "order_buckets",
    "plan_job_buckets",
]
