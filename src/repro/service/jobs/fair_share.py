"""Fair-share job picking and makespan-aware bucket planning.

Two small, separately testable policies feed the
:class:`~repro.service.jobs.manager.JobManager` pump:

* :class:`FairShare` decides **whose** work runs next: clients are
  charged for the Monte-Carlo rows dispatched on their behalf, and the
  next bucket always comes from the least-charged client with runnable
  work (ties break by submission order).  Two clients submitting
  campaigns of any relative size therefore make interleaved progress
  instead of queueing behind each other.

* :func:`plan_job_buckets` decides **what** a unit of work is: a job's
  points are carved into compatibility buckets via the campaign
  executor's mega-batch planner (:func:`~repro.campaign.executor.
  plan_mega_batches` -- the same bucketing ``campaign run`` packs by),
  non-packable points are grouped so analytic grids and optimize
  chunks still batch, and :func:`order_buckets` orders the result
  longest-processing-time first -- the classic makespan heuristic (cf.
  the faasm ``BatchScheduler`` harness): big dense buckets start early
  and the ragged tail fills in behind them, so mega-batch packing
  stays dense across concurrent jobs.

Bucketing never affects results: every record is bit-identical under
any grouping (the packed engine's draw-identity contract), so buckets
are purely the units of scheduling, progress and journal streaming.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.executor import (
    MAX_CHUNK,
    is_packable,
    plan_mega_batches,
)
from repro.campaign.spec import ScenarioPoint
from repro.service.scheduler import point_rows

#: One schedulable unit: ``(key, point)`` pairs that ride one
#: scheduler submission together.
Bucket = List[Tuple[str, ScenarioPoint]]


def bucket_rows(bucket: Bucket) -> int:
    """A bucket's row weight (the fair-share charging currency)."""
    return sum(point_rows(p) for _, p in bucket)


def plan_job_buckets(
    items: Sequence[Tuple[str, ScenarioPoint]],
    pack_rows: int,
    *,
    max_chunk: int = MAX_CHUNK,
) -> List[Bucket]:
    """Carve a job's outstanding points into schedulable buckets.

    Packable simulate points go through the campaign executor's
    mega-batch planner (compatibility bucketing + row-budget splitting);
    everything else is grouped by its evaluation shape -- analytic
    points per pattern family (they batch onto one
    :class:`~repro.core.batch.PlatformGrid`), remaining points by
    (mode, engine) -- and chunked at ``max_chunk`` so progress stays
    granular.  Returns the buckets in makespan (LPT) order.
    """
    if pack_rows < 1:
        raise ValueError(f"pack_rows must be >= 1, got {pack_rows}")
    packable = [(k, p) for k, p in items if is_packable(p)]
    packable_keys = {k for k, _ in packable}
    buckets = plan_mega_batches(packable, pack_rows)
    rest: Dict[Tuple, Bucket] = {}
    for key, point in items:
        if key in packable_keys:
            continue
        if point.mode == "simulate" and point.engine == "analytic":
            group = ("analytic", point.kind)
        else:
            group = (point.mode, point.engine)
        rest.setdefault(group, []).append((key, point))
    for group_items in rest.values():
        for i in range(0, len(group_items), max_chunk):
            buckets.append(group_items[i : i + max_chunk])
    return order_buckets(buckets)


def order_buckets(buckets: Iterable[Bucket]) -> List[Bucket]:
    """Longest-processing-time-first bucket order (stable on ties).

    Dispatching the heaviest buckets first minimises the schedule's
    tail: the small heterogeneous leftovers interleave behind the big
    dense mega-batches instead of stranding one giant bucket at the
    end of the job.
    """
    indexed = list(buckets)
    return sorted(
        indexed,
        key=lambda b: (-bucket_rows(b), indexed.index(b)),
    )


class FairShare:
    """Least-served-client-first accounting across concurrent jobs.

    The manager charges each dispatched bucket's rows to its client and
    asks :meth:`pick` which runnable job goes next: the one whose
    client has consumed the fewest rows so far, ties broken by
    submission sequence.  Charges persist across a client's jobs within
    one daemon lifetime, so a client cannot gain priority by splitting
    one campaign into many submissions.
    """

    def __init__(self) -> None:
        self._served: Dict[str, int] = {}

    def charge(self, client: str, rows: int) -> None:
        """Account ``rows`` of dispatched work to ``client``."""
        self._served[client] = self._served.get(client, 0) + int(rows)

    def served(self, client: str) -> int:
        """Rows charged to ``client`` so far."""
        return self._served.get(client, 0)

    def pick(self, candidates: Sequence) -> Optional[object]:
        """The next job to serve: least-charged client, then FIFO.

        ``candidates`` are objects with ``client`` and ``seq``
        attributes (the manager's runnable jobs); returns ``None`` when
        there is nothing to pick.
        """
        best = None
        best_rank = None
        for job in candidates:
            rank = (self.served(job.client), job.seq)
            if best_rank is None or rank < best_rank:
                best, best_rank = job, rank
        return best

    def stats(self) -> Dict[str, int]:
        """Per-client served-row counters (for ``/v1/stats``)."""
        return dict(self._served)
