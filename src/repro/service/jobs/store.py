"""On-disk persistence for daemon-side campaign jobs.

Each job owns one directory under the jobs root::

    <jobs-dir>/<job-id>/
        spec.json       submission envelope (spec + client + timestamps)
        journal.jsonl   campaign-run-format result journal
        state.json      terminal marker (present only once the job ends)

``journal.jsonl`` uses :class:`repro.campaign.executor.Journal` -- the
exact line format ``campaign run --journal`` writes -- so a job journal
is interchangeable with a batch journal and a restarted daemon resumes
a job the same way a resumed campaign run does: re-expand ``spec.json``
through the scenario registry, preload the journal, recompute only the
missing points.  ``state.json`` exists only for terminal jobs
(done/failed/cancelled); its absence is what marks a job as resumable.

All single-file writes go through temp-file + :func:`os.replace`, the
same atomicity discipline as the result cache, so a crash mid-write
never leaves a half-readable marker.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.executor import Journal
from repro.campaign.spec import CampaignSpec

_JOB_ID_RE = re.compile(r"^j[0-9a-f]{12}$")

SPEC_FILE = "spec.json"
JOURNAL_FILE = "journal.jsonl"
STATE_FILE = "state.json"


def _write_json_atomic(path: str, data: Dict[str, Any]) -> None:
    """Write JSON via temp + rename so readers never see a torn file."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    os.replace(tmp, path)


class JobStore:
    """The jobs directory: one subdirectory per job, journal included.

    The store knows nothing about scheduling -- it persists and loads
    the three per-job files and hands the manager a
    :class:`~repro.campaign.executor.Journal` opened on the job's
    journal path (which also preloads existing records for resume).
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def job_dir(self, job_id: str) -> str:
        """The job's directory (created on demand)."""
        path = os.path.join(self.root, job_id)
        os.makedirs(path, exist_ok=True)
        return path

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), JOURNAL_FILE)

    def open_journal(self, job_id: str) -> Journal:
        """Open (and preload) the job's campaign-format journal."""
        return Journal(self.journal_path(job_id))

    def save_spec(self, job_id: str, envelope: Dict[str, Any]) -> None:
        """Persist the submission envelope (spec dict + metadata)."""
        _write_json_atomic(
            os.path.join(self.job_dir(job_id), SPEC_FILE), envelope
        )

    def save_state(self, job_id: str, state: Dict[str, Any]) -> None:
        """Persist the terminal marker; only terminal jobs have one."""
        _write_json_atomic(
            os.path.join(self.job_dir(job_id), STATE_FILE), state
        )

    def load(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Load one job's persisted envelope (plus any terminal state).

        Returns ``None`` when the directory is not a readable job (no
        or corrupt ``spec.json``, spec that no longer parses) -- the
        manager skips those rather than refusing to start.
        """
        job_dir = os.path.join(self.root, job_id)
        spec_path = os.path.join(job_dir, SPEC_FILE)
        try:
            with open(spec_path) as fh:
                envelope = json.load(fh)
            spec = CampaignSpec.from_dict(envelope["spec"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        loaded: Dict[str, Any] = {
            "job_id": job_id,
            "spec": spec,
            "envelope": envelope,
            "state": None,
        }
        state_path = os.path.join(job_dir, STATE_FILE)
        if os.path.exists(state_path):
            try:
                with open(state_path) as fh:
                    loaded["state"] = json.load(fh)
            except (OSError, ValueError):
                # A torn terminal marker: treat the job as non-terminal
                # and let it resume; finishing rewrites the marker.
                loaded["state"] = None
        return loaded

    def load_all(self) -> List[Dict[str, Any]]:
        """Load every persisted job, sorted by submission time then id.

        Submission order matters on restart: job sequence numbers are
        reassigned in this order, so fair-share FIFO tie-breaking
        survives the daemon bounce.
        """
        jobs = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        for name in names:
            if not _JOB_ID_RE.match(name):
                continue
            loaded = self.load(name)
            if loaded is not None:
                jobs.append(loaded)
        jobs.sort(
            key=lambda j: (j["envelope"].get("created", 0.0), j["job_id"])
        )
        return jobs

    def delete_job(self, job_id: str) -> bool:
        """Remove one job's directory; ``True`` if something was removed.

        Only ids matching the job-dir shape are ever deleted -- a
        corrupted id can not escape the jobs root.
        """
        if not _JOB_ID_RE.match(job_id):
            return False
        path = os.path.join(self.root, job_id)
        if not os.path.isdir(path):
            return False
        shutil.rmtree(path, ignore_errors=True)
        return not os.path.isdir(path)

    def prune(
        self,
        ttl_days: float,
        *,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> List[Tuple[str, str]]:
        """Offline TTL cleanup: delete old **terminal** job dirs.

        The ``repro jobs --prune`` path, safe to run against a live
        daemon's jobs dir: only directories carrying a ``state.json``
        terminal marker are candidates (queued/running jobs have none),
        aged by the marker's ``finished`` timestamp with the file's
        mtime as fallback.  Unreadable-spec directories are left alone
        -- deleting what we cannot read is how backups die.  Returns
        ``(job_id, state)`` pairs (the would-be list under
        ``dry_run``).
        """
        if ttl_days < 0:
            raise ValueError(f"ttl_days must be >= 0, got {ttl_days}")
        import time

        cutoff = (time.time() if now is None else now) - ttl_days * 86400.0
        pruned: List[Tuple[str, str]] = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        for name in names:
            if not _JOB_ID_RE.match(name):
                continue
            state_path = os.path.join(self.root, name, STATE_FILE)
            try:
                with open(state_path) as fh:
                    state = json.load(fh)
            except (OSError, ValueError):
                continue  # no/torn terminal marker: not collectable
            finished = state.get("finished")
            if not isinstance(finished, (int, float)) or not finished:
                try:
                    finished = os.path.getmtime(state_path)
                except OSError:
                    continue
            if finished >= cutoff:
                continue
            pruned.append((name, str(state.get("state", "?"))))
            if not dry_run:
                self.delete_job(name)
        return pruned
