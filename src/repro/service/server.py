"""The daemon: a minimal asyncio HTTP/1.1 front end for the scheduler.

Stdlib only -- ``asyncio.start_server`` plus a hand-rolled HTTP/1.1
reader/writer (no framework).  Endpoints:

* ``POST /v1/evaluate`` -- evaluate one or many scenario points
  (:mod:`repro.service.protocol` schema); concurrent requests are
  micro-batched and coalesced by the scheduler.  Since protocol 2 a
  failing point yields a per-point ``error`` record inside a 200
  response instead of failing the whole request.
* ``POST /v1/campaign`` and ``GET|DELETE /v1/jobs...`` -- the jobs API
  (:mod:`repro.service.jobs`): submit whole campaign specs as
  journaled background jobs, poll progress, stream results, cancel.
* ``GET /v1/health`` -- liveness plus version info.
* ``GET /v1/stats`` -- scheduler counters, batch configuration,
  tiered-cache state and job-manager counters.
* ``GET /metrics`` -- the same counters plus native histograms in
  Prometheus text exposition format (:mod:`repro.service.obs`).
* ``GET /v1/trace`` / ``GET /v1/trace/<id>`` -- span timelines of
  recently completed requests (the trace ring).

Connections are keep-alive by default (HTTP/1.1 semantics), so a
client issuing many queries pays TCP setup once.

:func:`run_service` is the blocking ``repro serve`` entry point;
:class:`BackgroundService` runs the identical stack on a daemon thread
for tests, benchmarks and embedders.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
import time
import urllib.parse
from contextlib import suppress
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro._version import __version__
from repro.service.admission import (
    ANONYMOUS_CLIENT,
    AdmissionConfig,
    AdmissionController,
    CLIENT_HEADER,
)
from repro.service.autotune import (
    AdaptiveBatchController,
    AutotuneRunner,
    ControllerConfig,
    DEFAULT_INTERVAL_MS,
)
from repro.service.faults import FaultInjector, FaultPlan, wrap_evaluate
from repro.service.jobs.api import JobsApi
from repro.service.jobs.manager import (
    DEFAULT_MAX_INFLIGHT,
    JobManager,
)
from repro.service.jobs.store import JobStore
from repro.service.memcache import (
    DEFAULT_MEM_ENTRIES,
    LRUCache,
    TieredCache,
)
from repro.service.obs import (
    DEFAULT_TRACE_BUFFER,
    Observability,
    RequestTrace,
    TRACE_HEADER,
)
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    evaluate_response,
    parse_evaluate_body,
)
from repro.service.fleet import EvalFleet
from repro.service.scheduler import (
    DEFAULT_EVAL_WORKERS,
    DEFAULT_PACK_ROWS,
    DEFAULT_WINDOW_MS,
    MicroBatchScheduler,
    point_rows,
)

#: Reject request bodies beyond this size (a 4096-point batch is ~2 MB).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An HTTP-level failure to report to the client and move on."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a daemon."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT  # 0 binds an ephemeral port
    batch_window_ms: float = DEFAULT_WINDOW_MS
    pack_rows: int = DEFAULT_PACK_ROWS
    mem_entries: int = DEFAULT_MEM_ENTRIES
    eval_workers: int = DEFAULT_EVAL_WORKERS
    cache_dir: Optional[str] = None
    #: When set, the bound port is written here once listening --
    #: scripts starting a ``--port 0`` daemon poll this file.
    port_file: Optional[str] = None
    #: Jobs persistence root.  ``None`` keeps jobs memory-only (still
    #: fully functional, but lost on restart).
    jobs_dir: Optional[str] = None
    #: Concurrently dispatched job buckets across all jobs.
    job_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Adaptive micro-batch tuning (:mod:`repro.service.autotune`):
    #: when on, a periodic controller retunes ``batch_window_ms`` and
    #: ``pack_rows`` from the observed compute-arrival rate, between
    #: ``autotune_window_floor_ms`` and ``autotune_window_ceil_ms``.
    autotune: bool = False
    autotune_interval_ms: Optional[float] = None
    autotune_window_floor_ms: Optional[float] = None
    autotune_window_ceil_ms: Optional[float] = None
    #: Resident evaluation processes (:mod:`repro.service.fleet`).
    #: ``0`` keeps evaluation in-process (the single-core default);
    #: ``N >= 1`` fans scheduler batches out to N warm workers.
    eval_procs: int = 0
    #: Admission control (:mod:`repro.service.admission`): per-client
    #: sustained row rate.  ``None`` leaves the front door wide open.
    rate_rows_per_s: Optional[float] = None
    #: Per-client burst capacity in rows; defaults to two seconds of
    #: the sustained rate when admission is on.
    burst_rows: Optional[int] = None
    #: Global bound on admitted-but-unanswered rows (0 = unbounded);
    #: beyond it requests are shed with 503.
    queue_rows: int = 0
    #: Age (days since finishing) past which terminal jobs in
    #: ``jobs_dir`` are garbage-collected.  ``None`` keeps them forever.
    job_ttl_days: Optional[float] = None
    #: Deterministic fault-injection plan
    #: (:mod:`repro.service.faults` grammar, e.g. ``"kill@2,drop@1"``).
    #: ``None`` falls back to the ``REPRO_FAULTS`` environment
    #: variable; empty/absent disables injection entirely.
    faults: Optional[str] = None
    #: How long a graceful drain waits for in-flight requests before
    #: force-closing their connections.
    drain_grace_s: float = 10.0
    #: Observability (:mod:`repro.service.obs`): request tracing,
    #: ``GET /metrics`` and ``GET /v1/trace``.  On by default -- the
    #: hooks are allocation-light; ``--no-obs`` turns the whole
    #: subsystem off (both endpoints then answer 404).
    observability: bool = True
    #: Structured JSON logging to stderr (``repro serve --log-json``).
    log_json: bool = False
    #: Log a ``slow_request`` event for requests at or above this
    #: server-side latency (works with or without ``--log-json``).
    slow_request_ms: Optional[float] = None
    #: Journal every admitted ``/v1/evaluate`` arrival to this file as
    #: a replayable ``repro loadtest --trace`` JSONL.
    record_trace: Optional[str] = None
    #: Completed traces kept for ``GET /v1/trace``.
    trace_buffer: int = DEFAULT_TRACE_BUFFER


class ServiceServer:
    """The HTTP front end bound to one scheduler."""

    def __init__(
        self,
        scheduler: MicroBatchScheduler,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        jobs_api: Optional[JobsApi] = None,
        autotune: Optional["AutotuneRunner"] = None,
        admission: Optional[AdmissionController] = None,
        fleet: Optional[EvalFleet] = None,
        injector: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
    ):
        self.scheduler = scheduler
        self.jobs_api = jobs_api
        self.autotune = autotune
        self.admission = admission
        self.fleet = fleet
        self.injector = injector
        self.obs = obs
        self.host = host
        self.port = port
        #: Readiness gate: set during graceful shutdown.  Liveness
        #: (``/v1/health``) stays 200 while draining; readiness
        #: (``/v1/health?check=ready``) flips to 503 and new work is
        #: refused so load balancers route around this instance.
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._t0 = 0.0
        self._started_wall = 0.0

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns ``(host, port)`` with the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.monotonic()
        self._started_wall = time.time()
        return self.host, self.port

    async def close(self, *, grace_s: float = 10.0) -> None:
        """Stop accepting and drain: the first step of shutdown.

        Stops the listener, waits up to ``grace_s`` for in-flight
        requests to answer (the scheduler is still live at this point,
        so they finish normally), then closes the remaining keep-alive
        connections -- idle clients just see EOF, and ``wait_closed``
        can never hang on a silent connection (Python >= 3.12 waits
        for all connection handlers).
        """
        self.draining = True
        if self._server is None:
            return
        self._server.close()
        deadline = time.monotonic() + max(0.0, grace_s)
        while self._active_requests and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._connections):
            with suppress(Exception):
                writer.close()
        with suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._server.wait_closed(), max(0.1, grace_s)
            )
        self._server = None

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _HttpError as exc:
                    await _write_response(
                        writer,
                        exc.status,
                        {"error": str(exc)},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                if (
                    self.injector is not None
                    and self.injector.drop_request()
                ):
                    break  # scheduled drop: close without answering
                method, path, headers, body = request
                trace: Optional[RequestTrace] = None
                if (
                    self.obs is not None
                    and method == "POST"
                    and path.partition("?")[0] == "/v1/evaluate"
                ):
                    trace = self.obs.begin_trace(
                        headers.get(TRACE_HEADER)
                    )
                self._active_requests += 1
                try:
                    status, payload = await self._dispatch(
                        method, path, headers, body, trace=trace
                    )
                finally:
                    self._active_requests -= 1
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self.draining
                extra_headers: Optional[Dict[str, str]] = None
                if (
                    status == 429
                    and isinstance(payload, dict)
                    and payload.get("retry_after_s")
                ):
                    # Header granularity is whole seconds (RFC 9110);
                    # the exact float rides in the JSON body.
                    extra_headers = {
                        "retry-after": str(
                            max(1, int(-(-payload["retry_after_s"] // 1)))
                        )
                    }
                if trace is not None:
                    extra_headers = dict(extra_headers or {})
                    extra_headers[TRACE_HEADER] = trace.trace_id
                t_respond = time.perf_counter()
                await _write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=extra_headers,
                )
                if trace is not None:
                    trace.span(
                        "respond", t_respond, time.perf_counter()
                    )
                    self.obs.finish_trace(trace, status)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._connections.discard(writer)
            writer.close()
            with suppress(ConnectionError):
                await writer.wait_closed()

    def _stats_payload(self) -> Dict[str, Any]:
        """Assemble the ``/v1/stats`` document (also feeds /metrics).

        With observability on, the whole snapshot is taken under the
        shared ``stats_lock`` (the same lock the fleet's counters
        update under), so no subsystem is read mid-update relative to
        another.
        """
        payload = {
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "version": __version__,
            "started_at": round(self._started_wall, 3),
            **self.scheduler.stats(),
        }
        payload["autotune"] = (
            self.autotune.stats()
            if self.autotune is not None
            else {"enabled": False}
        )
        payload["admission"] = (
            self.admission.stats()
            if self.admission is not None
            else {"enabled": False}
        )
        if self.jobs_api is not None:
            payload["jobs"] = self.jobs_api.manager.stats()
        if self.injector is not None:
            payload["faults"] = self.injector.stats()
        return payload

    def _stats_snapshot(self) -> Dict[str, Any]:
        if self.obs is not None:
            with self.obs.stats_lock:
                return self._stats_payload()
        return self._stats_payload()

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        trace: Optional[RequestTrace] = None,
    ) -> Tuple[int, Any]:
        path, _, raw_query = path.partition("?")
        query = {
            k: v[0]
            for k, v in urllib.parse.parse_qs(raw_query).items()
        }
        if path == "/v1/health":
            if method != "GET":
                return 405, {"error": f"{path} accepts GET only"}
            ready = not self.draining
            payload = {
                "status": "ok",
                "service": "repro",
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "ready": ready,
            }
            if query.get("check") == "ready" and not ready:
                # Liveness stays 200 while draining (the process is
                # healthy); readiness flips so balancers stop routing.
                return 503, {**payload, "error": "daemon is draining"}
            return 200, payload
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": f"{path} accepts GET only"}
            return 200, self._stats_snapshot()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": f"{path} accepts GET only"}
            if self.obs is None:
                return 404, {
                    "error": "observability is disabled (--no-obs); "
                    "/metrics is unavailable"
                }
            # A str payload is written as text/plain (exposition 0.0.4).
            return 200, self.obs.render_metrics(self._stats_snapshot())
        if path == "/v1/trace" or path.startswith("/v1/trace/"):
            if method != "GET":
                return 405, {"error": "/v1/trace accepts GET only"}
            if self.obs is None:
                return 404, {
                    "error": "observability is disabled (--no-obs); "
                    "/v1/trace is unavailable"
                }
            trace_id = path[len("/v1/trace/"):]
            if trace_id:
                found = self.obs.traces.get(trace_id)
                if found is None:
                    return 404, {
                        "error": f"trace {trace_id!r} is not in the "
                        f"ring (last {len(self.obs.traces)} completed "
                        "requests are kept)"
                    }
                return 200, {"trace": found.to_dict()}
            try:
                limit = max(1, min(int(query.get("limit", 50)), 1000))
            except ValueError:
                return 400, {"error": '"limit" must be an integer'}
            return 200, {
                "traces": [
                    t.summary() for t in self.obs.traces.recent(limit)
                ]
            }
        if path == "/v1/evaluate":
            if method != "POST":
                return 405, {"error": f"{path} accepts POST only"}
            if self.draining:
                return 503, {
                    "error": "daemon is draining and not accepting "
                    "new work"
                }
            t_parse = time.perf_counter()
            try:
                points = parse_evaluate_body(body)
            except ProtocolError as exc:
                return 400, {"error": str(exc)}
            if trace is not None:
                trace.n_points = len(points)
                trace.span(
                    "parse", t_parse, time.perf_counter(),
                    {"bytes": len(body)},
                )
            admitted = None
            if self.admission is not None:
                t_admit = time.perf_counter()
                admitted = self.admission.admit(
                    headers.get(CLIENT_HEADER, ANONYMOUS_CLIENT),
                    sum(point_rows(p) for p in points),
                    asyncio.get_running_loop().time(),
                )
                if trace is not None:
                    trace.span(
                        "admission", t_admit, time.perf_counter(),
                        {"admitted": admitted.admitted},
                    )
                if not admitted.admitted:
                    payload: Dict[str, Any] = {"error": admitted.error}
                    if admitted.retry_after_s is not None:
                        payload["retry_after_s"] = admitted.retry_after_s
                    return admitted.status, payload
            if self.obs is not None and self.obs.recorder is not None:
                # Journal admitted arrivals on the loop clock -- the
                # same clock admission replays under.
                self.obs.recorder.record(
                    points, asyncio.get_running_loop().time()
                )
            try:
                keys, records, n_failed = (
                    await self.scheduler.submit_settled(
                        points, trace=trace
                    )
                )
            except Exception as exc:  # scheduler torn down mid-request
                return 500, {"error": f"evaluation failed: {exc}"}
            finally:
                if admitted is not None:
                    self.admission.release(admitted)
            return 200, evaluate_response(
                keys,
                records,
                n_failed,
                trace_id=trace.trace_id if trace is not None else None,
            )
        if self.jobs_api is not None:
            answer = await self.jobs_api.handle(
                method, path, query, body
            )
            if answer is not None:
                return answer
        return 404, {
            "error": f"unknown path {path!r}; endpoints: "
            "POST /v1/evaluate, POST /v1/campaign, GET /v1/jobs, "
            "GET /v1/health, GET /v1/stats, GET /metrics, "
            "GET /v1/trace"
        }


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one HTTP/1.1 request; ``None`` on clean end-of-stream."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed HTTP request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        # Without this check a chunked POST (no content-length) would
        # read as an *empty* body and come back as a baffling schema
        # error; name the real problem instead.
        raise _HttpError(
            400, "chunked bodies unsupported, send content-length"
        )
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "malformed content-length header") from None
    if length < 0:
        raise _HttpError(400, "malformed content-length header")
    if length > MAX_BODY_BYTES:
        raise _HttpError(
            413,
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte cap",
        )
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, headers, body


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    *,
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    if isinstance(payload, str):
        # Pre-rendered text body (GET /metrics, exposition 0.0.4).
        blob = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        blob = json.dumps(payload, default=str).encode("utf-8")
        content_type = "application/json"
    extra = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"content-type: {content_type}\r\n"
        f"content-length: {len(blob)}\r\n"
        f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + blob)
    await writer.drain()


# -- service lifecycle -------------------------------------------------------
async def start_service(
    config: ServiceConfig,
) -> Tuple[MicroBatchScheduler, ServiceServer, JobManager]:
    """Stand up the cache, scheduler, job manager and listening server."""
    from repro.campaign.cache import ResultCache

    disk = (
        ResultCache(config.cache_dir)
        if config.cache_dir is not None
        else None
    )
    cache = TieredCache(LRUCache(config.mem_entries), disk)
    obs: Optional[Observability] = None
    if config.observability:
        obs = Observability(
            trace_buffer=config.trace_buffer,
            log_json=config.log_json,
            slow_request_s=(
                config.slow_request_ms / 1e3
                if config.slow_request_ms is not None
                else None
            ),
            record_trace_path=config.record_trace,
        )
    fault_spec = (
        config.faults
        if config.faults is not None
        else os.environ.get("REPRO_FAULTS", "")
    )
    plan = FaultPlan.parse(fault_spec)
    injector = FaultInjector(plan) if plan.enabled else None
    fleet: Optional[EvalFleet] = None
    if config.eval_procs >= 1:
        # Create the pool before the event loop grows threads: the
        # fork start method snapshots the parent, and forking early
        # keeps that snapshot small and thread-free.  A warm-up
        # failure raises FleetUnavailableError here, so `repro serve`
        # fails fast instead of hanging at the first batch.
        fleet = EvalFleet(
            config.eval_procs,
            pack_rows=config.pack_rows,
            injector=injector,
            obs=obs,
        )
    evaluate = fleet.evaluate if fleet is not None else None
    fallback = None
    if fleet is not None:
        from repro.campaign.executor import evaluate_points_packed

        fallback = evaluate_points_packed
    elif injector is not None and plan.touches_eval:
        from repro.campaign.executor import evaluate_points_packed

        evaluate = wrap_evaluate(evaluate_points_packed, injector)
    scheduler = MicroBatchScheduler(
        cache,
        batch_window_ms=config.batch_window_ms,
        pack_rows=config.pack_rows,
        eval_workers=config.eval_workers,
        evaluate=evaluate,
        fallback_evaluate=fallback,
        obs=obs,
    )
    await scheduler.start()
    store = (
        JobStore(config.jobs_dir)
        if config.jobs_dir is not None
        else None
    )
    manager = JobManager(
        scheduler,
        store,
        max_inflight=config.job_inflight,
        job_ttl_days=config.job_ttl_days,
        obs=obs,
    )
    await manager.start()
    admission: Optional[AdmissionController] = None
    if config.rate_rows_per_s is not None:
        burst = (
            config.burst_rows
            if config.burst_rows is not None
            else max(1, int(2 * config.rate_rows_per_s))
        )
        admission = AdmissionController(
            AdmissionConfig(
                rate_rows_per_s=config.rate_rows_per_s,
                burst_rows=burst,
                queue_rows=config.queue_rows,
            ),
            obs=obs,
        )
    autotune: Optional[AutotuneRunner] = None
    if config.autotune:
        controller_fields: Dict[str, Any] = {}
        if config.autotune_window_floor_ms is not None:
            controller_fields["window_floor_ms"] = (
                config.autotune_window_floor_ms
            )
        if config.autotune_window_ceil_ms is not None:
            controller_fields["window_ceil_ms"] = (
                config.autotune_window_ceil_ms
            )
        if fleet is not None and fleet.procs > 1:
            # Fleet-aware rate signal: N workers absorb ~N times the
            # arrival rate before batching pays, so the window ramp's
            # thresholds scale with the fleet size.
            defaults = ControllerConfig()
            controller_fields.setdefault(
                "low_rate_rps", defaults.low_rate_rps * fleet.procs
            )
            controller_fields.setdefault(
                "high_rate_rps", defaults.high_rate_rps * fleet.procs
            )
        autotune = AutotuneRunner(
            scheduler,
            AdaptiveBatchController(
                ControllerConfig(**controller_fields)
            ),
            interval_ms=(
                config.autotune_interval_ms
                if config.autotune_interval_ms is not None
                else DEFAULT_INTERVAL_MS
            ),
        )
        await autotune.start()
    server = ServiceServer(
        scheduler,
        host=config.host,
        port=config.port,
        jobs_api=JobsApi(manager),
        autotune=autotune,
        admission=admission,
        fleet=fleet,
        injector=injector,
        obs=obs,
    )
    await server.start()
    if config.port_file:
        _write_port_file(config.port_file, server.port)
    return scheduler, server, manager


def _write_port_file(path: str, port: int) -> None:
    """Publish the bound port atomically (pollers never see a partial)."""
    if os.path.exists(path):
        # Leftover from an abnormal exit (a clean drain removes it):
        # overwrite, but say so -- a poller racing two daemons on one
        # port file is otherwise maddening to diagnose.
        print(
            f"warning: overwriting stale port file {path}",
            file=sys.stderr,
        )
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write(f"{port}\n")
    os.replace(tmp, path)


def _remove_port_file(path: Optional[str]) -> None:
    """Drain-path cleanup; missing files are fine."""
    if path:
        with suppress(OSError):
            os.remove(path)


async def _serve_async(
    config: ServiceConfig,
    *,
    ready: Optional[
        Callable[[MicroBatchScheduler, ServiceServer], None]
    ] = None,
    stop: Optional[asyncio.Event] = None,
    install_signal_handlers: bool = False,
) -> None:
    """Run a full service until ``stop`` is set (or forever).

    On exit the drain order is: stop accepting HTTP and answer what is
    in flight, then stop the autotuner, flush job journals, flush the
    scheduler's remaining queue (``close(flush=True)`` evaluates
    already-accepted batches instead of abandoning their futures),
    close the fleet, and finally remove the port file -- its absence
    is the external signal that the daemon is truly gone.
    """
    scheduler, server, manager = await start_service(config)
    if stop is None:
        stop = asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
    if ready is not None:
        ready(scheduler, server)
    try:
        await stop.wait()
    finally:
        await server.close(grace_s=config.drain_grace_s)
        if server.autotune is not None:
            await server.autotune.close()
        await manager.close()
        await scheduler.close(flush=True)
        if server.fleet is not None:
            # After the scheduler: its in-flight batches are the
            # fleet's last callers.
            server.fleet.close()
        if server.obs is not None:
            # Last: flushes and closes the arrival recorder after the
            # final admitted request has been journalled.
            server.obs.close()
        _remove_port_file(config.port_file)


def run_service(
    config: ServiceConfig,
    *,
    ready: Optional[
        Callable[[MicroBatchScheduler, ServiceServer], None]
    ] = None,
) -> int:
    """Blocking entry point for ``repro serve``.

    SIGTERM and SIGINT trigger a graceful drain (see
    :func:`_serve_async`) rather than an abrupt exit, so supervisors
    sending TERM get flushed journals and a removed port file.
    """
    try:
        asyncio.run(
            _serve_async(config, ready=ready, install_signal_handlers=True)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


class BackgroundService:
    """A full service on a daemon thread, for tests and benchmarks.

    Runs exactly the stack ``repro serve`` runs (tiered cache,
    micro-batch scheduler, HTTP server) inside a private event loop::

        with BackgroundService(cache_dir=str(tmp)) as svc:
            client = ServiceClient(port=svc.port)
            ...

    The scheduler and job manager are exposed for white-box assertions
    on their counters.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        self.config = config if config is not None else ServiceConfig(
            port=0, **overrides
        )
        self.host = self.config.host
        self.port: Optional[int] = None
        self.scheduler: Optional[MicroBatchScheduler] = None
        self.manager: Optional[JobManager] = None
        self.autotune: Optional[AutotuneRunner] = None
        self.fleet: Optional[EvalFleet] = None
        self.admission: Optional[AdmissionController] = None
        self.obs: Optional[Observability] = None
        self.server: Optional[ServiceServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        """Start the thread; returns ``(host, port)`` once listening."""
        if self._thread is not None:
            return self.host, self.port
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}"
            ) from self._error
        return self.host, self.port

    def stop(self) -> None:
        """Shut the service down and join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def ready(
            scheduler: MicroBatchScheduler, server: ServiceServer
        ) -> None:
            self.scheduler = scheduler
            if server.jobs_api is not None:
                self.manager = server.jobs_api.manager
            self.autotune = server.autotune
            self.fleet = server.fleet
            self.admission = server.admission
            self.obs = server.obs
            self.server = server
            self.host, self.port = server.host, server.port
            self._ready.set()

        await _serve_async(self.config, ready=ready, stop=self._stop)
