"""In-memory LRU result tier above the on-disk :class:`ResultCache`.

The service answers most repeat traffic without touching disk: a
size-bounded LRU maps campaign cache keys to result records, and a
:class:`TieredCache` stacks it on the content-addressed on-disk store so
a disk hit is promoted into memory and a store writes through to both
tiers.  Records use the exact same keys as the campaign layer
(:func:`repro.campaign.cache.cache_key`), so a daemon sharing a
``--cache-dir`` with batch campaigns serves their warm results and vice
versa.

Hit/miss/eviction counters on both tiers feed the daemon's
``GET /v1/stats`` endpoint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.campaign.cache import ResultCache

#: Default bound on in-memory entries; at the typical ~1 KB per record
#: this keeps the hot tier in the low tens of MB.
DEFAULT_MEM_ENTRIES = 4096


class LRUCache:
    """A size-bounded in-memory key -> record store with LRU eviction.

    Both :meth:`get` and :meth:`put` refresh recency; once
    ``max_entries`` is exceeded the least-recently-used entry is
    dropped.  Stored records are shared by reference -- the service
    treats records as immutable once computed (they go straight to JSON
    serialisation), so no defensive copies are taken.
    """

    def __init__(self, max_entries: int = DEFAULT_MEM_ENTRIES):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._data: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch a record, counting a hit or miss and refreshing recency."""
        record = self._data.get(key)
        if record is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store a record, evicting the LRU entry when over budget."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = record
        if len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every entry (counters are kept: they describe traffic)."""
        self._data.clear()

    def stats(self) -> Dict[str, Any]:
        """Counters and occupancy for the stats endpoint."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._data),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


class TieredCache:
    """Memory tier over an optional on-disk :class:`ResultCache`.

    Reads go memory -> disk (disk hits are promoted into memory); writes
    go to both tiers.  With ``disk=None`` the memory tier works alone --
    a cache-dir-less daemon still coalesces and memoises.
    """

    def __init__(
        self, memory: LRUCache, disk: Optional[ResultCache] = None
    ):
        self.memory = memory
        self.disk = disk
        self.disk_hits = 0
        self.disk_misses = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch through the tiers, promoting disk hits into memory."""
        record = self.memory.get(key)
        if record is not None:
            return record
        if self.disk is None:
            return None
        record = self.disk.get(key)
        if record is None:
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        self.memory.put(key, record)
        return record

    def get_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        """Bulk fetch: memory first, one bulk disk pass for the rest."""
        out: Dict[str, Dict[str, Any]] = {}
        missing = []
        for key in keys:
            record = self.memory.get(key)
            if record is not None:
                out[key] = record
            else:
                missing.append(key)
        if self.disk is not None and missing:
            found = self.disk.get_many(missing)
            self.disk_hits += len(found)
            self.disk_misses += len(missing) - len(found)
            for key, record in found.items():
                self.memory.put(key, record)
            out.update(found)
        return out

    def put_many(self, records: Mapping[str, Dict[str, Any]]) -> None:
        """Write records through to both tiers."""
        for key, record in records.items():
            self.memory.put(key, record)
        if self.disk is not None:
            self.disk.put_many(records)

    def stats(self) -> Dict[str, Any]:
        """Both tiers' counters for the stats endpoint."""
        disk: Optional[Dict[str, Any]] = None
        if self.disk is not None:
            disk = {
                "root": self.disk.root,
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "versions": self.disk.version_counts(),
            }
        return {"memory": self.memory.stats(), "disk": disk}
