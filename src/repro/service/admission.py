"""Traffic discipline in front of the scheduler: rate limits + shedding.

The daemon's micro-batcher happily absorbs any burst -- by queueing it.
Under sustained overload that queue grows without bound: every request
is eventually answered, seconds late, and memory grows with the
backlog.  Real serving needs **admission control**: decide *at the
front door* whether a request may enter, and if not, tell the client
exactly what to do about it.

Two independent disciplines, checked in order:

1. **Bounded admission queue** (global).  ``queue_rows`` caps the
   Monte-Carlo rows admitted but not yet answered, across all clients.
   A request that would push the backlog past the cap is **shed** with
   ``503`` -- the load-shedding contract: the daemon is momentarily
   saturated, try another replica or back off.  Shedding is checked
   first so a saturated daemon stays cheap to reject from and no
   client's token budget is burned on a request that cannot run.

2. **Per-client token bucket** (fairness).  Each client owns a bucket
   holding up to ``burst_rows`` row-tokens, refilled continuously at
   ``rate_rows_per_s``.  Rows are the currency -- the same unit the
   micro-batcher packs by and fair-share charges by -- so one client
   streaming huge Monte-Carlo points is throttled identically to one
   streaming many small ones.  A request that outruns its bucket gets
   ``429`` with a ``Retry-After`` telling it exactly when the bucket
   will cover it; a request larger than the whole burst capacity can
   never be admitted and the 429 says to split it instead.

Both checks are **deterministic**: buckets advance only on explicit
``now`` timestamps (the server passes the event-loop clock; tests pass
trace timestamps), so a saved arrival trace admits and rejects the
exact same requests on every replay.

Client identity comes from the ``X-Repro-Client`` request header
(``anonymous`` when absent), mirroring the jobs API's fair-share
identity.  Per-client counters (admitted / rejected / shed / rows) are
surfaced under ``"admission"`` in ``GET /v1/stats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.service.obs import Observability

#: Client identity header (case-insensitive on the wire; the server
#: lower-cases header names).  Shared with the client and replayer.
CLIENT_HEADER = "x-repro-client"

#: Fallback identity for requests that do not name a client; matches
#: the jobs API's anonymous fair-share identity.
ANONYMOUS_CLIENT = "anonymous"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the front door (``repro serve --rate-rows-per-s ...``)."""

    #: Per-client sustained row budget (tokens refilled per second).
    rate_rows_per_s: float
    #: Per-client bucket capacity: the largest burst admitted at once.
    burst_rows: int
    #: Global cap on admitted-but-unanswered rows; beyond it requests
    #: are shed with 503 instead of queueing.  ``0`` disables the cap.
    queue_rows: int = 0

    def __post_init__(self) -> None:
        if self.rate_rows_per_s <= 0:
            raise ValueError(
                f"rate_rows_per_s must be > 0, got {self.rate_rows_per_s}"
            )
        if self.burst_rows < 1:
            raise ValueError(
                f"burst_rows must be >= 1, got {self.burst_rows}"
            )
        if self.queue_rows < 0:
            raise ValueError(
                f"queue_rows must be >= 0, got {self.queue_rows}"
            )


@dataclass(frozen=True)
class Admission:
    """One admission decision.

    ``status`` is ``None`` when admitted, else the HTTP status to
    answer (429 or 503).  ``retry_after_s`` accompanies a 429 whose
    deficit a waiting client can actually cover.
    """

    admitted: bool
    rows: int
    status: Optional[int] = None
    retry_after_s: Optional[float] = None
    error: Optional[str] = None


class TokenBucket:
    """One client's row-token bucket; deterministic in ``now``.

    The bucket starts full (a fresh client may burst immediately) and
    refills continuously: ``tokens = min(burst, tokens + rate * dt)``.
    Time never runs backwards -- a stale ``now`` (concurrent callers
    racing on the event loop) reuses the newest timestamp seen, so
    replaying a trace of ``(now, rows)`` pairs is reproducible.
    """

    def __init__(self, rate_rows_per_s: float, burst_rows: int):
        self.rate = float(rate_rows_per_s)
        self.burst = float(burst_rows)
        self.tokens = self.burst
        self._t_last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._t_last is None:
            self._t_last = now
            return
        if now > self._t_last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._t_last) * self.rate
            )
            self._t_last = now

    def take(self, rows: int, now: float) -> Optional[float]:
        """Try to take ``rows`` tokens; ``None`` on success.

        On failure returns the seconds until the bucket will cover the
        request (``inf`` when ``rows`` exceeds the burst capacity and
        waiting can never help).
        """
        self._refill(now)
        if rows <= self.tokens:
            self.tokens -= rows
            return None
        if rows > self.burst:
            return math.inf
        return (rows - self.tokens) / self.rate


@dataclass
class _ClientState:
    bucket: TokenBucket
    counters: Dict[str, int] = field(
        default_factory=lambda: {
            "admitted": 0,
            "rejected_429": 0,
            "shed_503": 0,
            "rows_admitted": 0,
        }
    )


class AdmissionController:
    """The front door: per-client buckets plus the global queue bound.

    Single-threaded by design -- every call happens on the daemon's
    event loop (or a test driving it synchronously), so there is no
    locking and decisions are strictly ordered.
    """

    def __init__(
        self,
        config: AdmissionConfig,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        #: Observability hub: rejections become structured log events
        #: (``--log-json``) carrying the client and decision.
        self._obs = obs
        self._clients: Dict[str, _ClientState] = {}
        self._outstanding_rows = 0
        self._peak_outstanding_rows = 0
        self._shed_total = 0
        self._rejected_total = 0
        self._admitted_total = 0

    @property
    def outstanding_rows(self) -> int:
        """Rows admitted and not yet released (the bounded queue)."""
        return self._outstanding_rows

    def _client(self, name: str) -> _ClientState:
        state = self._clients.get(name)
        if state is None:
            state = _ClientState(
                TokenBucket(
                    self.config.rate_rows_per_s, self.config.burst_rows
                )
            )
            self._clients[name] = state
        return state

    def admit(self, client: str, rows: int, now: float) -> Admission:
        """Decide one request; admitted rows must be :meth:`release`\\ d."""
        rows = max(1, int(rows))
        state = self._client(client or ANONYMOUS_CLIENT)
        cap = self.config.queue_rows
        if cap and self._outstanding_rows + rows > cap:
            state.counters["shed_503"] += 1
            self._shed_total += 1
            if self._obs is not None:
                self._obs.event(
                    "admission_shed",
                    client=client or ANONYMOUS_CLIENT,
                    rows=rows,
                    outstanding_rows=self._outstanding_rows,
                    queue_rows=cap,
                )
            return Admission(
                admitted=False,
                rows=rows,
                status=503,
                error=(
                    f"admission queue full ({self._outstanding_rows} of "
                    f"{cap} rows in flight); back off and retry"
                ),
            )
        wait = state.bucket.take(rows, now)
        if wait is not None:
            state.counters["rejected_429"] += 1
            self._rejected_total += 1
            if self._obs is not None:
                self._obs.event(
                    "admission_reject",
                    client=client or ANONYMOUS_CLIENT,
                    rows=rows,
                    retry_after_s=(
                        None if math.isinf(wait) else round(wait, 4)
                    ),
                )
            if math.isinf(wait):
                return Admission(
                    admitted=False,
                    rows=rows,
                    status=429,
                    error=(
                        f"request of {rows} rows exceeds the per-client "
                        f"burst capacity ({self.config.burst_rows} rows); "
                        "split the batch"
                    ),
                )
            return Admission(
                admitted=False,
                rows=rows,
                status=429,
                retry_after_s=wait,
                error=(
                    f"client {client!r} rate-limited: {rows} rows "
                    f"requested, bucket refills at "
                    f"{self.config.rate_rows_per_s:g} rows/s; retry in "
                    f"{wait:.3f}s"
                ),
            )
        state.counters["admitted"] += 1
        state.counters["rows_admitted"] += rows
        self._admitted_total += 1
        self._outstanding_rows += rows
        self._peak_outstanding_rows = max(
            self._peak_outstanding_rows, self._outstanding_rows
        )
        return Admission(admitted=True, rows=rows)

    def release(self, admission: Admission) -> None:
        """Return an admitted request's rows to the queue budget."""
        if admission.admitted:
            self._outstanding_rows = max(
                0, self._outstanding_rows - admission.rows
            )

    def stats(self) -> Dict[str, Any]:
        """The ``"admission"`` section of ``GET /v1/stats``."""
        return {
            "config": {
                "rate_rows_per_s": self.config.rate_rows_per_s,
                "burst_rows": self.config.burst_rows,
                "queue_rows": self.config.queue_rows,
            },
            "outstanding_rows": self._outstanding_rows,
            "peak_outstanding_rows": self._peak_outstanding_rows,
            "counters": {
                "admitted": self._admitted_total,
                "rejected_429": self._rejected_total,
                "shed_503": self._shed_total,
            },
            "clients": {
                name: dict(state.counters)
                for name, state in sorted(self._clients.items())
            },
        }
