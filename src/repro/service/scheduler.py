"""Request micro-batching: the core of the evaluation daemon.

Concurrent ``/v1/evaluate`` requests land here as scenario points.  For
each point the scheduler, in order:

1. answers from the :class:`~repro.service.memcache.TieredCache`
   (memory LRU, then the on-disk campaign cache);
2. **coalesces** onto an identical in-flight computation -- requests
   sharing a campaign cache key await one future, so N concurrent
   identical queries cost exactly one engine invocation;
3. enqueues the point and lets it ride the next **micro-batch**: the
   drain loop waits a short window (``batch_window_ms``) after the
   first enqueue -- or until ``pack_rows`` Monte-Carlo rows are queued
   -- so that points arriving together are evaluated together.

A batch is evaluated on a small thread pool through
:func:`~repro.campaign.executor.evaluate_points_packed` -- the same
routing the campaign executor uses: analytic points grouped per family
onto :mod:`repro.core.batch`, simulate points packed into one
struct-of-arrays mega-batch, everything else per point.  Each point's
random stream comes from :func:`~repro.simulation.dispatch.tier_rng`
(the grouping-invariant per-point derivation), so service records are
**bit-identical** to solo CLI runs of the same points, whatever mix of
requests they were batched with.  Threads -- not processes -- carry the
work on purpose: the vectorised engines release the GIL inside their
NumPy kernels, and a resident pool keeps the schedule/optimisation
memo caches hot across requests, which is the point of a daemon.

Completed records are written through the tiered cache and fanned back
to every awaiting future.  All counters are surfaced via :meth:`stats`
(the ``GET /v1/stats`` payload).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from concurrent.futures.process import BrokenProcessPool

from repro.campaign.cache import cache_key
from repro.campaign.spec import ScenarioPoint
from repro.service.faults import FleetUnavailableError
from repro.service.memcache import TieredCache
from repro.service.obs import (
    BatchSink,
    Observability,
    RequestTrace,
    run_with_sink,
)

#: Default micro-batch collection window.  Long enough that requests
#: issued "at the same time" (one client fan-out, a burst of users)
#: land in one batch; short enough to be invisible next to engine time.
DEFAULT_WINDOW_MS = 5.0

#: Default row budget per batch (summed ``n_patterns * n_runs``);
#: mirrors the campaign executor's mega-batch budget.
DEFAULT_PACK_ROWS = 1_000_000

#: Default evaluation thread count.  Two lets one batch evaluate while
#: the next collects; the NumPy kernels release the GIL so this is real
#: overlap, not time slicing.
DEFAULT_EVAL_WORKERS = 2

#: Consecutive fleet-infrastructure failures before the circuit breaker
#: stops trying the fleet and routes every batch to the in-process
#: fallback.
DEFAULT_FLEET_FAILURE_THRESHOLD = 3

#: Evaluate failures that mean "the evaluator is gone", not "this batch
#: is bad": the fallback gets the batch and the circuit breaker counts.
FLEET_INFRA_ERRORS = (FleetUnavailableError, BrokenProcessPool)


def point_rows(point: ScenarioPoint) -> int:
    """A point's contribution to a batch row budget.

    Shared with the jobs layer, whose fair-share accounting charges
    clients by the same row currency the batcher packs by.
    """
    if point.mode == "simulate" and point.engine != "analytic":
        return max(1, point.n_patterns * point.n_runs)
    return 1


_point_rows = point_rows

#: A settled per-key outcome: the result record, or the exception the
#: computation raised.
Outcome = Union[Dict[str, Any], BaseException]


@dataclass
class _Pending:
    """One enqueued computation: a unique cache key awaiting a batch."""

    key: str
    point: ScenarioPoint
    rows: int
    future: "asyncio.Future[Dict[str, Any]]" = field(repr=False)
    #: Observability only (``None`` when tracing is off): when the
    #: point was enqueued, and the request traces riding this key --
    #: the original submitter plus any coalescers.
    enqueued_t: float = 0.0
    traces: Optional[List[RequestTrace]] = field(
        default=None, repr=False
    )


def _evaluate_with_spans(
    sink: BatchSink,
    t_cut: float,
    evaluate: Callable[[List[ScenarioPoint]], List[Dict[str, Any]]],
    points: List[ScenarioPoint],
) -> List[Dict[str, Any]]:
    """Executor-thread wrapper stamping queue-wait/execute spans.

    Runs *inside* the evaluation thread so the queue-wait span measures
    real executor dispatch delay, and the thread-local sink is armed on
    the same thread the fleet's ``evaluate`` runs on (contextvars do
    not cross ``run_in_executor``).
    """
    t0 = time.perf_counter()
    sink.add("queue_wait", t_cut, t0)
    try:
        return run_with_sink(sink, evaluate, points)
    finally:
        sink.add(
            "execute",
            t0,
            time.perf_counter(),
            {"batch_points": len(points)},
        )


class MicroBatchScheduler:
    """Coalesce, cache and micro-batch concurrent evaluation requests.

    Parameters
    ----------
    cache:
        The tiered result cache; ``None`` disables caching (in-flight
        coalescing still works).
    batch_window_ms:
        How long the drain loop waits after the first enqueue before
        cutting a batch, letting concurrent requests pile in.  ``0``
        dispatches immediately (whatever is queued at that instant
        still forms one batch).
    pack_rows:
        Row budget per batch; a full budget cuts the batch early and
        oversized queues split into several batches.
    eval_workers:
        Evaluation thread count (see the module docstring for why
        threads).
    evaluate:
        The batch evaluation function, ``points -> records`` in order.
        Defaults to :func:`~repro.campaign.executor.
        evaluate_points_packed`; tests inject counting wrappers here to
        assert coalescing.
    fallback_evaluate:
        Graceful-degradation path for an injected ``evaluate`` that can
        disappear (the process fleet): when ``evaluate`` raises a fleet
        infrastructure error (:data:`FLEET_INFRA_ERRORS`), the batch is
        re-run through this callable instead of failing, and after
        ``fleet_failure_threshold`` *consecutive* such failures the
        circuit breaker opens -- every subsequent batch goes straight
        to the fallback (``"degraded": true`` plus counters in
        ``/v1/stats``).
    fleet_failure_threshold:
        Consecutive fleet failures that open the circuit breaker.
    """

    def __init__(
        self,
        cache: Optional[TieredCache] = None,
        *,
        batch_window_ms: float = DEFAULT_WINDOW_MS,
        pack_rows: int = DEFAULT_PACK_ROWS,
        eval_workers: int = DEFAULT_EVAL_WORKERS,
        evaluate: Optional[
            Callable[[List[ScenarioPoint]], List[Dict[str, Any]]]
        ] = None,
        fallback_evaluate: Optional[
            Callable[[List[ScenarioPoint]], List[Dict[str, Any]]]
        ] = None,
        fleet_failure_threshold: int = DEFAULT_FLEET_FAILURE_THRESHOLD,
        obs: Optional[Observability] = None,
    ):
        if batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        if pack_rows < 1:
            raise ValueError(f"pack_rows must be >= 1, got {pack_rows}")
        if eval_workers < 1:
            raise ValueError(
                f"eval_workers must be >= 1, got {eval_workers}"
            )
        if fleet_failure_threshold < 1:
            raise ValueError(
                f"fleet_failure_threshold must be >= 1, got "
                f"{fleet_failure_threshold}"
            )
        if evaluate is None:
            from repro.campaign.executor import evaluate_points_packed

            evaluate = evaluate_points_packed
        self._evaluate = evaluate
        self._fallback = fallback_evaluate
        self.fleet_failure_threshold = int(fleet_failure_threshold)
        self._consecutive_fleet_failures = 0
        self._circuit_open = False
        self._draining = False
        self._cache = cache
        self.batch_window_ms = float(batch_window_ms)
        self.pack_rows = int(pack_rows)
        self.eval_workers = int(eval_workers)

        #: Observability hub; ``None`` keeps every hook a no-op.
        self._obs = obs
        self._queue: "deque[_Pending]" = deque()
        self._queued_rows = 0
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        #: key -> queued/in-flight pending, maintained only when
        #: tracing is on, so a coalescing request can attach its trace
        #: to the computation it joined.
        self._pending_by_key: Dict[str, _Pending] = {}
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._drain_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._counters: Dict[str, int] = {
            "requests": 0,        # submit() calls
            "points": 0,          # points across all requests
            "cache_hits": 0,      # points answered by the tiered cache
            "coalesced": 0,       # points joined onto an in-flight future
            "computed": 0,        # points that started a new computation
            "computed_rows": 0,   # their summed Monte-Carlo rows
            "batches": 0,         # engine batches dispatched
            "engine_points": 0,   # unique points the engine evaluated
            "batch_failures": 0,  # batches whose evaluation raised
            "point_failures": 0,  # unique points whose evaluation raised
            "cache_put_failures": 0,
            "max_batch_points": 0,
            "reconfigures": 0,    # live reconfigure() calls applied
            "fleet_failures": 0,  # evaluate raised a fleet infra error
            "fallback_batches": 0,  # batches answered by the fallback
            "circuit_breaker_trips": 0,  # times the breaker opened
        }

    @property
    def running(self) -> bool:
        """Whether the drain loop is active."""
        return self._drain_task is not None

    async def start(self) -> None:
        """Bind to the running event loop and start the drain task."""
        if self.running:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._draining = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.eval_workers, thread_name_prefix="repro-eval"
        )
        self._drain_task = self._loop.create_task(self._drain())

    async def close(self, *, flush: bool = False) -> None:
        """Stop draining and finish in-flight batches.

        With ``flush=False`` (teardown) queued-but-unbatched points
        fail with a clear error.  With ``flush=True`` (graceful drain,
        the SIGTERM path) the remaining queue is cut into batches and
        **evaluated** first, so every request already accepted gets a
        real answer before the scheduler stops.  New submissions are
        refused either way once closing begins.
        """
        self._draining = True
        if self._drain_task is not None:
            self._drain_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._drain_task
            self._drain_task = None
        if flush and self._loop is not None and self._pool is not None:
            while self._queue:
                batch = self._take_batch()
                task = self._loop.create_task(self._run_batch(batch))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)
        if self._batch_tasks:
            await asyncio.gather(
                *list(self._batch_tasks), return_exceptions=True
            )
        while self._queue:
            pending = self._queue.popleft()
            self._inflight.pop(pending.key, None)
            self._pending_by_key.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_exception(
                    RuntimeError("scheduler closed before evaluation")
                )
            # Retrieve the exception if nobody is awaiting, so closing
            # an idle scheduler never logs "exception never retrieved".
            with suppress(RuntimeError):
                pending.future.exception()
        self._queued_rows = 0
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def resolve(
        self,
        points: Sequence[ScenarioPoint],
        *,
        trace: Optional[RequestTrace] = None,
    ) -> Tuple[List[str], Dict[str, Outcome]]:
        """Evaluate points, returning settled per-unique-key outcomes.

        The low-level entry the jobs layer builds on: duplicate points
        within the request, identical concurrent requests and cached
        points all resolve to one outcome per cache key.  An outcome is
        the **raw** result record (no ``labels`` merged -- exactly what
        the campaign journal stores) or the exception its evaluation
        raised; nothing is raised here, so one bad point never poisons
        its neighbours.
        """
        if not self.running:
            raise RuntimeError(
                "scheduler is not running; call start() first"
            )
        if self._draining:
            raise RuntimeError(
                "scheduler is draining and not accepting new work"
            )
        keys = [cache_key(p) for p in points]
        if not points:
            return keys, {}
        self._counters["requests"] += 1
        self._counters["points"] += len(points)
        unique: Dict[str, ScenarioPoint] = {}
        for key, point in zip(keys, points):
            unique.setdefault(key, point)
        # One bulk lookup for the whole request: the disk tier then
        # pays one shard listing per prefix instead of one open() probe
        # per point, which matters on the loop thread.
        outcomes: Dict[str, Outcome] = {}
        if self._cache is not None:
            t_cache0 = time.perf_counter() if trace is not None else 0.0
            outcomes = dict(self._cache.get_many(list(unique)))
            self._counters["cache_hits"] += len(outcomes)
            if trace is not None:
                trace.span(
                    "cache_lookup",
                    t_cache0,
                    time.perf_counter(),
                    {"keys": len(unique), "hits": len(outcomes)},
                )
        waiting: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        tracing = self._obs is not None
        for key, point in unique.items():
            if key in outcomes:
                continue
            future = self._inflight.get(key)
            if future is not None:
                self._counters["coalesced"] += 1
                if trace is not None:
                    joined = self._pending_by_key.get(key)
                    if joined is not None:
                        if joined.traces is None:
                            joined.traces = []
                        joined.traces.append(trace)
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                rows = point_rows(point)
                pending = _Pending(key, point, rows, future)
                if tracing:
                    pending.enqueued_t = time.perf_counter()
                    if trace is not None:
                        pending.traces = [trace]
                    self._pending_by_key[key] = pending
                self._queue.append(pending)
                self._queued_rows += rows
                self._counters["computed"] += 1
                self._counters["computed_rows"] += rows
                self._wake.set()
            waiting[key] = future
        if waiting:
            results = await asyncio.gather(
                *waiting.values(), return_exceptions=True
            )
            outcomes.update(zip(waiting, results))
        return keys, outcomes

    async def submit(
        self, points: Sequence[ScenarioPoint]
    ) -> Tuple[List[str], List[Dict[str, Any]]]:
        """Evaluate points, returning ``(cache_keys, records)`` in order.

        Per-point ``labels`` are merged into each returned record
        exactly as campaign assembly does.  The first failed point's
        exception is re-raised (all-or-nothing); front ends that want
        per-point error reporting use :meth:`submit_settled`.
        """
        keys, outcomes = await self.resolve(points)
        records: List[Dict[str, Any]] = []
        for key, point in zip(keys, points):
            outcome = outcomes[key]
            if isinstance(outcome, BaseException):
                raise outcome
            records.append({**dict(point.labels), **outcome})
        return keys, records

    async def submit_settled(
        self,
        points: Sequence[ScenarioPoint],
        *,
        trace: Optional[RequestTrace] = None,
    ) -> Tuple[List[str], List[Dict[str, Any]], int]:
        """Evaluate points; failures become per-point ``error`` records.

        Returns ``(cache_keys, records, n_failed)``.  A point whose
        evaluation raised yields ``{**labels, "error": <message>}``
        instead of failing the whole request -- the ``/v1/evaluate``
        contract since protocol 2.
        """
        keys, outcomes = await self.resolve(points, trace=trace)
        t_unpack0 = time.perf_counter() if trace is not None else 0.0
        records: List[Dict[str, Any]] = []
        n_failed = 0
        for key, point in zip(keys, points):
            outcome = outcomes[key]
            if isinstance(outcome, BaseException):
                n_failed += 1
                records.append(
                    {**dict(point.labels), "error": str(outcome)}
                )
            else:
                records.append({**dict(point.labels), **outcome})
        if trace is not None:
            trace.span("unpack", t_unpack0, time.perf_counter())
        return keys, records, n_failed

    def reconfigure(
        self,
        *,
        batch_window_ms: Optional[float] = None,
        pack_rows: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Retune the batching knobs on a live scheduler.

        The seam the adaptive controller (:mod:`repro.service.autotune`)
        drives: new values apply from the *current* collection window
        on -- the drain loop re-reads both knobs every time it wakes,
        and reconfiguring wakes it -- and queued requests are never
        dropped or duplicated by a change (points already queued simply
        ride the next batch cut under the new budget; shrinking
        ``pack_rows`` below a single point's rows still dispatches that
        point alone, exactly as at construction time).

        Validation matches the constructor.  Returns the live config.
        Safe from any thread: the knobs are plain attribute writes, and
        the wake-up is marshalled onto the event loop.
        """
        if batch_window_ms is not None:
            if batch_window_ms < 0:
                raise ValueError(
                    f"batch_window_ms must be >= 0, got {batch_window_ms}"
                )
            self.batch_window_ms = float(batch_window_ms)
        if pack_rows is not None:
            if pack_rows < 1:
                raise ValueError(
                    f"pack_rows must be >= 1, got {pack_rows}"
                )
            self.pack_rows = int(pack_rows)
        if batch_window_ms is not None or pack_rows is not None:
            self._counters["reconfigures"] += 1
            if self._loop is not None and self._wake is not None:
                # Wake a drain loop sleeping on the old window so a
                # shorter window (or smaller row budget) takes effect
                # immediately, not after the old deadline.
                self._loop.call_soon_threadsafe(self._wake.set)
        return {
            "batch_window_ms": self.batch_window_ms,
            "pack_rows": self.pack_rows,
        }

    def stats(self) -> Dict[str, Any]:
        """Configuration, counters and cache state for ``/v1/stats``."""
        payload = {
            "config": {
                "batch_window_ms": self.batch_window_ms,
                "pack_rows": self.pack_rows,
                "eval_workers": self.eval_workers,
            },
            "counters": dict(self._counters),
            "inflight": len(self._inflight),
            "queued": len(self._queue),
            "queued_rows": self._queued_rows,
            #: Circuit breaker open: batches run in-process, not on the
            #: injected evaluator (the fleet), until restart.
            "degraded": self._circuit_open,
            "cache": (
                self._cache.stats() if self._cache is not None else None
            ),
        }
        # An injected evaluator that can introspect itself (the process
        # fleet) reports through the scheduler, keeping /v1/stats whole.
        evaluator_stats = getattr(self._evaluate, "__self__", None)
        if evaluator_stats is not None and hasattr(
            evaluator_stats, "stats"
        ):
            payload["evaluator"] = evaluator_stats.stats()
        return payload

    # -- drain loop ---------------------------------------------------------
    async def _drain(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not self._queue:
                continue
            if self.batch_window_ms > 0:
                # The micro-batching window: let concurrent requests
                # pile onto the queue before cutting batches.  Every
                # enqueue re-signals the wake event, so a burst that
                # fills the row budget cuts the window short.  The
                # deadline is recomputed from the live window each
                # iteration (reconfigure() also signals the event), so
                # retuning applies to the window in progress.
                window_start = self._loop.time()
                while self._queued_rows < self.pack_rows:
                    deadline = (
                        window_start + self.batch_window_ms / 1000.0
                    )
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        break
                    self._wake.clear()
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
            while self._queue:
                batch = self._take_batch()
                task = self._loop.create_task(self._run_batch(batch))
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)

    def _take_batch(self) -> List[_Pending]:
        """Pop queued points up to the row budget (at least one)."""
        if self._obs is not None:
            self._obs.h_queue_depth.observe(len(self._queue))
        batch: List[_Pending] = []
        rows = 0
        while self._queue:
            pending = self._queue[0]
            if batch and rows + pending.rows > self.pack_rows:
                break
            batch.append(self._queue.popleft())
            rows += pending.rows
        self._queued_rows -= rows
        return batch

    def _active_evaluate(
        self,
    ) -> Tuple[Callable[..., List[Dict[str, Any]]], bool]:
        """The callable batches run through, and whether it's the fallback."""
        if self._circuit_open and self._fallback is not None:
            return self._fallback, True
        return self._evaluate, False

    def _record_fleet_failure(self) -> None:
        """Count one fleet infrastructure failure; maybe open the breaker."""
        self._counters["fleet_failures"] += 1
        self._consecutive_fleet_failures += 1
        if (
            not self._circuit_open
            and self._consecutive_fleet_failures
            >= self.fleet_failure_threshold
        ):
            self._circuit_open = True
            self._counters["circuit_breaker_trips"] += 1

    def _dispatch_evaluate(
        self,
        evaluate: Callable[..., List[Dict[str, Any]]],
        points: List[ScenarioPoint],
        sink: Optional[BatchSink],
        t_cut: float,
    ) -> "asyncio.Future":
        """Run one engine call on the pool, span-wrapped when traced."""
        if sink is not None:
            return self._loop.run_in_executor(
                self._pool, _evaluate_with_spans, sink, t_cut,
                evaluate, points,
            )
        return self._loop.run_in_executor(self._pool, evaluate, points)

    async def _run_batch(self, batch: List[_Pending]) -> None:
        self._counters["batches"] += 1
        self._counters["engine_points"] += len(batch)
        self._counters["max_batch_points"] = max(
            self._counters["max_batch_points"], len(batch)
        )
        points = [p.point for p in batch]
        evaluate, on_fallback = self._active_evaluate()
        # Observability: a span sink is allocated only when at least
        # one request trace rides this batch, so untraced traffic (and
        # obs-off daemons) pay nothing here.
        sink: Optional[BatchSink] = None
        t_cut = 0.0
        if self._obs is not None:
            self._obs.h_batch_points.observe(len(batch))
            if any(p.traces for p in batch):
                sink = BatchSink()
                t_cut = time.perf_counter()
        try:
            records = await self._dispatch_evaluate(
                evaluate, points, sink, t_cut
            )
            if not on_fallback:
                self._consecutive_fleet_failures = 0
        except FLEET_INFRA_ERRORS as exc:
            if on_fallback or self._fallback is None:
                self._counters["batch_failures"] += 1
                await self._isolate_failed_batch(batch, exc)
                return
            # Graceful degradation: the fleet is gone (not the batch);
            # answer in-process and let the breaker decide whether to
            # keep trying the fleet on future batches.
            self._record_fleet_failure()
            on_fallback = True
            try:
                records = await self._dispatch_evaluate(
                    self._fallback, points, sink, t_cut
                )
            except Exception as fallback_exc:
                self._counters["batch_failures"] += 1
                await self._isolate_failed_batch(batch, fallback_exc)
                return
        except Exception as exc:
            self._counters["batch_failures"] += 1
            await self._isolate_failed_batch(batch, exc)
            return
        if on_fallback:
            self._counters["fallback_batches"] += 1
        if self._obs is not None:
            self._stamp_batch_spans(batch, sink, t_cut, on_fallback)
        # Cache BEFORE resolving futures/in-flight entries: a request
        # arriving between those steps then finds the record in cache,
        # keeping "one computation per key" airtight.  A failed cache
        # write (disk full, permissions) must not fail the requests --
        # the records exist; count it and answer.
        if self._cache is not None:
            try:
                self._cache.put_many(
                    {p.key: r for p, r in zip(batch, records)}
                )
            except OSError:
                self._counters["cache_put_failures"] += 1
        for pending, record in zip(batch, records):
            self._inflight.pop(pending.key, None)
            self._pending_by_key.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_result(record)

    def _stamp_batch_spans(
        self,
        batch: List[_Pending],
        sink: Optional[BatchSink],
        t_cut: float,
        on_fallback: bool,
    ) -> None:
        """Fan batch-level spans out to every trace riding the batch."""
        bucket_spans = sink.spans if sink is not None else []
        for pending in batch:
            if not pending.traces:
                continue
            for trace in pending.traces:
                meta: Dict[str, Any] = {
                    "window_ms": self.batch_window_ms,
                    "batch_points": len(batch),
                }
                if on_fallback:
                    meta["fallback"] = True
                trace.span(
                    "batch_window", pending.enqueued_t, t_cut, meta
                )
                if bucket_spans:
                    trace.add_spans(bucket_spans)

    async def _isolate_failed_batch(
        self, batch: List[_Pending], exc: Exception
    ) -> None:
        """Attribute a failed batch to the points that actually fail.

        A mega-batch evaluates as one engine call, so one degenerate
        point would otherwise fail every point batched with it.  On
        failure each point is re-evaluated solo: the innocents still
        answer (and are cached), and only the genuinely failing points
        carry the exception.  A single-point batch needs no re-run --
        the failure is its own.
        """
        if len(batch) == 1:
            outcomes: List[Any] = [exc]
        else:
            evaluate, _ = self._active_evaluate()
            outcomes = list(
                await asyncio.gather(
                    *(
                        self._loop.run_in_executor(
                            self._pool, evaluate, [p.point]
                        )
                        for p in batch
                    ),
                    return_exceptions=True,
                )
            )
            outcomes = [
                o if isinstance(o, BaseException) else o[0]
                for o in outcomes
            ]
        good = {
            p.key: o
            for p, o in zip(batch, outcomes)
            if not isinstance(o, BaseException)
        }
        if self._cache is not None and good:
            try:
                self._cache.put_many(good)
            except OSError:
                self._counters["cache_put_failures"] += 1
        for pending, outcome in zip(batch, outcomes):
            self._inflight.pop(pending.key, None)
            self._pending_by_key.pop(pending.key, None)
            if pending.future.done():
                continue
            if isinstance(outcome, BaseException):
                self._counters["point_failures"] += 1
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result(outcome)
