"""Adaptive micro-batch tuning from observed arrival rate.

The daemon's two batching knobs trade latency against throughput:

* ``batch_window_ms`` -- how long the first request of a batch waits
  for company.  Under light traffic the window is pure added latency
  (nobody else arrives); under heavy traffic it is the whole point
  (requests arriving together ride one packed mega-batch).
* ``pack_rows`` -- the Monte-Carlo row budget per engine batch; too
  small and a backlog drains in many under-filled batches.

Static values force the operator to guess the traffic.
:class:`AdaptiveBatchController` closes the loop instead: it smooths
the observed **compute-arrival rate** (points entering the batch
queue -- cache hits and coalesced duplicates need no batching and are
excluded) with an EWMA, then maps rate to a window through a bounded
monotone ramp::

    window(rate) = floor + (ceil - floor) * clip((rate - low) / (high - low), 0, 1)

Low rate => floor (don't tax quiet traffic with waiting); high rate =>
ceiling (batch aggressively when batching pays).  Monotonicity and the
bounds are load-bearing -- the property tests in
``tests/test_autotune.py`` pin them -- and the ramp is deliberately
*memoryless in rate*: all smoothing lives in the EWMA, so convergence
on a constant-rate trace follows from EWMA convergence.

``pack_rows`` scales with the observed rows-per-point so a batch holds
about ``target_batch_points`` points, and is raised further when a
backlog (queued rows) exceeds it, letting bursts drain in few large
batches.

Decisions are applied through
:meth:`~repro.service.scheduler.MicroBatchScheduler.reconfigure` with
relative **hysteresis**: a knob moves only when the decision differs
from the live value by more than ``hysteresis`` (fractionally), so a
converged controller stops issuing reconfigures instead of jittering.

:class:`AutotuneRunner` is the asyncio glue: a periodic task that
samples scheduler counters, feeds the controller and applies its
decisions; its :meth:`~AutotuneRunner.stats` appear under
``"autotune"`` in ``GET /v1/stats``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import suppress
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, Optional

from repro.service.scheduler import MicroBatchScheduler

#: Default sampling period for the server-side runner.
DEFAULT_INTERVAL_MS = 250.0


@dataclass(frozen=True)
class ControllerConfig:
    """Bounds and gains of the adaptive controller."""

    #: Window bounds (ms).  The floor is the quiet-traffic window --
    #: keep it near zero so light load pays almost no batching tax.
    window_floor_ms: float = 0.5
    window_ceil_ms: float = 25.0
    #: Rate ramp (computed points/s): at or below ``low_rate_rps`` the
    #: window sits on the floor, at or above ``high_rate_rps`` on the
    #: ceiling, linear in between.
    low_rate_rps: float = 20.0
    high_rate_rps: float = 400.0
    #: Row-budget sizing aim: a batch should hold about this many
    #: points at the observed rows-per-point.
    target_batch_points: int = 64
    pack_rows_floor: int = 1_000
    pack_rows_ceil: int = 4_000_000
    #: EWMA weight of the newest rate sample.
    alpha: float = 0.3
    #: Minimum relative change before a knob is actually retuned.
    hysteresis: float = 0.1

    def __post_init__(self) -> None:
        if self.window_floor_ms < 0:
            raise ValueError(
                f"window_floor_ms must be >= 0, got {self.window_floor_ms}"
            )
        if self.window_ceil_ms < self.window_floor_ms:
            raise ValueError(
                "window_ceil_ms must be >= window_floor_ms, got "
                f"{self.window_ceil_ms} < {self.window_floor_ms}"
            )
        if self.low_rate_rps < 0 or self.high_rate_rps <= self.low_rate_rps:
            raise ValueError(
                "need 0 <= low_rate_rps < high_rate_rps, got "
                f"{self.low_rate_rps} / {self.high_rate_rps}"
            )
        if self.target_batch_points < 1:
            raise ValueError(
                "target_batch_points must be >= 1, got "
                f"{self.target_batch_points}"
            )
        if self.pack_rows_floor < 1:
            raise ValueError(
                f"pack_rows_floor must be >= 1, got {self.pack_rows_floor}"
            )
        if self.pack_rows_ceil < self.pack_rows_floor:
            raise ValueError(
                "pack_rows_ceil must be >= pack_rows_floor, got "
                f"{self.pack_rows_ceil} < {self.pack_rows_floor}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.hysteresis < 0:
            raise ValueError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )


class AdaptiveBatchController:
    """Map observed load to batching knobs; see the module docstring."""

    def __init__(self, config: Optional[ControllerConfig] = None):
        self.config = config if config is not None else ControllerConfig()
        self._rate: Optional[float] = None
        self._rows_per_point: Optional[float] = None
        self._queue_rows = 0
        self._observations = 0
        self._applied = 0
        self._history: Deque[Dict[str, Any]] = deque(maxlen=32)

    # -- observation --------------------------------------------------------
    def observe(
        self,
        *,
        points: int,
        rows: int,
        queue_rows: int,
        dt_s: float,
    ) -> None:
        """Feed one sampling interval's deltas.

        ``points``/``rows`` are the *computed* points and Monte-Carlo
        rows that entered the batch queue during the interval;
        ``queue_rows`` is the backlog at sample time.
        """
        if dt_s <= 0:
            raise ValueError(f"dt_s must be > 0, got {dt_s}")
        if points < 0 or rows < 0 or queue_rows < 0:
            raise ValueError(
                "points, rows and queue_rows must be >= 0, got "
                f"{points}/{rows}/{queue_rows}"
            )
        alpha = self.config.alpha
        sample_rate = points / dt_s
        self._rate = (
            sample_rate
            if self._rate is None
            else alpha * sample_rate + (1.0 - alpha) * self._rate
        )
        if points > 0:
            sample_rpp = rows / points
            self._rows_per_point = (
                sample_rpp
                if self._rows_per_point is None
                else alpha * sample_rpp
                + (1.0 - alpha) * self._rows_per_point
            )
        self._queue_rows = int(queue_rows)
        self._observations += 1

    # -- decision -----------------------------------------------------------
    def window_for_rate(self, rate_rps: float) -> float:
        """The monotone bounded ramp: rate in, window (ms) out."""
        cfg = self.config
        span = cfg.high_rate_rps - cfg.low_rate_rps
        frac = (max(0.0, rate_rps) - cfg.low_rate_rps) / span
        frac = min(1.0, max(0.0, frac))
        window = (
            cfg.window_floor_ms
            + (cfg.window_ceil_ms - cfg.window_floor_ms) * frac
        )
        # The arithmetic can round a hair past the bounds; the bounds
        # are the contract, so clamp.
        return min(cfg.window_ceil_ms, max(cfg.window_floor_ms, window))

    def pack_rows_for_load(
        self, rows_per_point: float, queue_rows: int
    ) -> int:
        """Row budget: ~``target_batch_points`` points, backlog-aware."""
        cfg = self.config
        want = cfg.target_batch_points * max(1.0, rows_per_point)
        want = max(want, float(queue_rows))
        return int(
            min(cfg.pack_rows_ceil, max(cfg.pack_rows_floor, want))
        )

    def decide(self) -> Dict[str, Any]:
        """The current decision (pure; no scheduler interaction)."""
        rate = self._rate if self._rate is not None else 0.0
        rpp = (
            self._rows_per_point
            if self._rows_per_point is not None
            else 1.0
        )
        return {
            "batch_window_ms": self.window_for_rate(rate),
            "pack_rows": self.pack_rows_for_load(rpp, self._queue_rows),
            "rate_rps": rate,
        }

    def _moved(self, new: float, old: float, *, scale: float) -> bool:
        """Did a knob move beyond hysteresis (relative, floored)?"""
        return abs(new - old) > self.config.hysteresis * max(
            abs(old), scale
        )

    def apply(
        self, scheduler: MicroBatchScheduler
    ) -> Optional[Dict[str, Any]]:
        """Decide and, if past hysteresis, reconfigure ``scheduler``.

        Returns the applied decision, or ``None`` when the live
        configuration is already within hysteresis of it (a converged
        controller goes quiet).
        """
        decision = self.decide()
        changes: Dict[str, Any] = {}
        if self._moved(
            decision["batch_window_ms"],
            scheduler.batch_window_ms,
            scale=0.1,  # 0.1 ms: keeps a 0-window from pinning forever
        ):
            changes["batch_window_ms"] = decision["batch_window_ms"]
        if self._moved(
            float(decision["pack_rows"]),
            float(scheduler.pack_rows),
            scale=1.0,
        ):
            changes["pack_rows"] = decision["pack_rows"]
        if not changes:
            return None
        scheduler.reconfigure(**changes)
        self._applied += 1
        applied = {**decision, "changed": sorted(changes)}
        self._history.append(applied)
        return applied

    def stats(self) -> Dict[str, Any]:
        """Controller state for ``/v1/stats``."""
        return {
            "config": asdict(self.config),
            "rate_rps": self._rate,
            "rows_per_point": self._rows_per_point,
            "queue_rows": self._queue_rows,
            "observations": self._observations,
            "applied": self._applied,
            "last_decision": (
                self._history[-1] if self._history else None
            ),
        }


class AutotuneRunner:
    """Periodic asyncio task feeding a controller from scheduler stats."""

    def __init__(
        self,
        scheduler: MicroBatchScheduler,
        controller: Optional[AdaptiveBatchController] = None,
        *,
        interval_ms: float = DEFAULT_INTERVAL_MS,
    ):
        if interval_ms <= 0:
            raise ValueError(
                f"interval_ms must be > 0, got {interval_ms}"
            )
        self.scheduler = scheduler
        self.controller = (
            controller
            if controller is not None
            else AdaptiveBatchController()
        )
        self.interval_ms = float(interval_ms)
        self._task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run()
            )

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        stats = self.scheduler.stats()
        prev_points = stats["counters"]["computed"]
        prev_rows = stats["counters"]["computed_rows"]
        prev_t = loop.time()
        while True:
            await asyncio.sleep(self.interval_ms / 1000.0)
            stats = self.scheduler.stats()
            now = loop.time()
            counters = stats["counters"]
            self.controller.observe(
                points=counters["computed"] - prev_points,
                rows=counters["computed_rows"] - prev_rows,
                queue_rows=stats["queued_rows"],
                dt_s=now - prev_t,
            )
            prev_points = counters["computed"]
            prev_rows = counters["computed_rows"]
            prev_t = now
            self.controller.apply(self.scheduler)

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` ``"autotune"`` section."""
        return {
            "enabled": True,
            "interval_ms": self.interval_ms,
            **self.controller.stats(),
        }
