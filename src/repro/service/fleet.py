"""Resident process fleet behind the micro-batch scheduler.

One daemon process tops out at roughly one core of Monte-Carlo: the
:class:`~repro.service.scheduler.MicroBatchScheduler` evaluates its
mega-batches on an in-process thread pool, and NumPy holds the GIL for
only part of each engine call.  :class:`EvalFleet` lifts that ceiling
by fanning every scheduler batch out to **N resident worker
processes**:

* The pool is created once at service startup (fork context, the
  campaign executor's precedent) and stays warm -- each worker keeps
  its imports, schedule/optimisation memo caches and NumPy buffers
  across batches, so per-batch cost is IPC plus compute, never
  interpreter start-up.
* Each batch is carved into row-budgeted buckets by the **same
  planner the jobs layer uses**
  (:func:`repro.service.jobs.fair_share.plan_job_buckets`):
  compatibility bucketing plus row-budget splitting, with the budget
  shrunk to ``ceil(total_rows / procs)`` so one batch spreads across
  the whole fleet instead of filling one worker's default budget.
* Workers evaluate through
  :func:`~repro.campaign.executor.evaluate_points_packed`, whose
  per-point records are **bit-identical** to solo
  :func:`~repro.campaign.executor.evaluate_point` runs under any
  packing -- ``tier_rng``'s placement-invariant per-point streams make
  the worker count invisible in the results.  The fleet reassembles
  records in input order, so swapping it in for in-process evaluation
  changes throughput and nothing else.

The scheduler takes the fleet as its injectable ``evaluate`` callable
(``MicroBatchScheduler(..., evaluate=fleet.evaluate)``); ``repro serve
--eval-procs N`` wires it up, and the fleet's counters surface under
``"evaluator"`` in ``GET /v1/stats``.

Crash recovery
--------------
A worker dying mid-batch (OOM kill, segfault in a native extension, a
chaos-injected ``kill@N``) breaks the whole ``ProcessPoolExecutor``:
every in-flight future raises ``BrokenProcessPool`` and the pool never
accepts work again.  Instead of letting that poison the scheduler
forever, :meth:`EvalFleet.evaluate`:

1. **rebuilds** the pool (fork + warm-up, exactly like startup) and
   **re-executes** the buckets that had not completed -- safe by
   construction, because ``tier_rng``'s placement invariance makes a
   retried bucket's records bit-identical to the records the dead
   worker would have produced;
2. retries each bucket a bounded number of times, then **bisects** a
   repeatedly-crashing bucket so the innocents in it still answer;
3. **quarantines** a single point that keeps crashing workers: its
   cache key goes on a deny list and further evaluations raise
   :class:`~repro.service.faults.PoisonPointError` immediately (a
   per-point error record downstream), never touching the pool again.

If the pool cannot be *rebuilt* (fork failing, warm-up dying -- an
infrastructure problem, not a point problem), evaluation raises
:class:`~repro.service.faults.FleetUnavailableError`; the scheduler's
circuit breaker then degrades to in-process evaluation.  A worker that
dies during the **constructor** warm-up fails fast with a clear
message instead of surfacing as an opaque ``BrokenProcessPool`` at the
first batch.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import suppress
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import cache_key
from repro.campaign.executor import DEFAULT_PACK_ROWS
from repro.campaign.spec import ScenarioPoint
from repro.service.faults import (
    FaultInjector,
    FleetUnavailableError,
    InjectedFault,
    PoisonPointError,
)
from repro.service.jobs.fair_share import (
    Bucket,
    bucket_rows,
    plan_job_buckets,
    point_rows,
)
from repro.service.obs import Observability, current_sink

#: Pool-crash retries per bucket before bisection kicks in.
DEFAULT_BUCKET_RETRIES = 2


def _warm_worker() -> None:
    """Pool initializer: pay the heavy imports once per worker.

    Under ``fork`` the parent's modules arrive pre-imported, but under
    ``spawn`` (or a parent that forked before importing the engine)
    this is where each resident worker loads NumPy and the simulation
    tiers -- before the first batch, not during it.
    """
    import repro.campaign.executor  # noqa: F401
    import repro.simulation.packed_engine  # noqa: F401


def _crash_on_warm() -> None:
    """Chaos initializer (``crash-prewarm``): die during warm-up."""
    os._exit(43)


def _noop() -> None:
    """Spawn-forcing task; see the prewarm in :class:`EvalFleet`."""


def _evaluate_bucket(
    point_dicts: Sequence[Dict[str, Any]],
    poison_seeds: Tuple[int, ...] = (),
    timed: bool = False,
) -> Any:
    """Worker entry: one row-budgeted bucket of serialised points.

    ``poison_seeds`` is the chaos harness's fail-stop model: a bucket
    containing a simulate point with one of these seeds hard-exits the
    worker, exactly like a segfault would -- the deterministic stand-in
    the bisection-quarantine tests and benches are built on.

    ``timed`` (observability: a traced request is riding the batch)
    wraps the same records -- untouched, bit-identity preserved -- in
    an envelope carrying the worker PID and in-worker evaluation time
    for the per-worker bucket spans of ``GET /v1/trace/<id>``.
    """
    if poison_seeds:
        for d in point_dicts:
            if (
                d.get("mode", "simulate") == "simulate"
                and d.get("seed") in poison_seeds
            ):
                os._exit(17)
    from repro.campaign.executor import evaluate_points_packed

    points = [ScenarioPoint.from_dict(d) for d in point_dicts]
    if timed:
        t0 = time.perf_counter()
        records = evaluate_points_packed(points)
        return {
            "records": records,
            "pid": os.getpid(),
            "eval_s": time.perf_counter() - t0,
        }
    return evaluate_points_packed(points)


class EvalFleet:
    """A resident process pool evaluating scheduler batches.

    ``procs`` is the worker count; ``pack_rows`` bounds one bucket's
    Monte-Carlo rows (the effective budget also shrinks to spread each
    batch across the fleet); ``bucket_retries`` bounds pool rebuilds
    per bucket before bisection.  :meth:`evaluate` is thread-safe --
    the scheduler calls it from several executor threads at once, and
    pool rebuilds are generation-guarded so concurrent failures trigger
    exactly one rebuild.
    """

    def __init__(
        self,
        procs: int,
        *,
        pack_rows: int = DEFAULT_PACK_ROWS,
        bucket_retries: int = DEFAULT_BUCKET_RETRIES,
        injector: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
    ):
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if pack_rows < 1:
            raise ValueError(f"pack_rows must be >= 1, got {pack_rows}")
        if bucket_retries < 0:
            raise ValueError(
                f"bucket_retries must be >= 0, got {bucket_retries}"
            )
        self.procs = int(procs)
        self.pack_rows = int(pack_rows)
        self.bucket_retries = int(bucket_retries)
        self._injector = injector
        self._poison_seeds: Tuple[int, ...] = (
            tuple(sorted(injector.plan.poison_seeds))
            if injector is not None
            else ()
        )
        self._initializer = (
            _crash_on_warm
            if injector is not None and injector.plan.crash_prewarm
            else _warm_worker
        )
        self._obs = obs
        # With observability on, the counter lock IS the hub's shared
        # stats lock: /v1/stats and /metrics snapshots then can never
        # observe fleet counters mid-update relative to the rest of
        # the payload (one uncontended acquire per batch).
        self._lock = (
            obs.stats_lock if obs is not None else threading.Lock()
        )
        self._pool_lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._broken = False
        self._quarantine: set = set()
        self._counters: Dict[str, int] = {
            "batches": 0,
            "buckets": 0,
            "points": 0,
            "rows": 0,
            "max_bucket_rows": 0,
            "max_batch_buckets": 0,
            "pool_rebuilds": 0,
            "bucket_retries": 0,
            "bisections": 0,
            "quarantined_points": 0,
        }
        self._pool: Optional[ProcessPoolExecutor] = self._make_pool(
            at_startup=True
        )

    # -- pool lifecycle ------------------------------------------------------
    def _make_pool(self, *, at_startup: bool = False) -> ProcessPoolExecutor:
        """Fork and warm a fresh worker pool, failing fast and clearly.

        A worker dying during warm-up used to surface as an opaque
        hang/``BrokenProcessPool`` at the first batch; now it raises
        here, at ``repro serve`` startup (or mid-recovery as
        :class:`FleetUnavailableError`), naming the real problem.
        """
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        pool = ProcessPoolExecutor(
            max_workers=self.procs,
            mp_context=context,
            initializer=self._initializer,
        )
        # Force every worker to fork NOW, not lazily on first batch:
        # the executor spawns one process per submit while none are
        # idle, and the service creates the fleet *before* binding its
        # listening socket -- forking later would hand each worker a
        # copy of live connection FDs, holding client connections open
        # long after the server closes them.
        try:
            for prewarm in [
                pool.submit(_noop) for _ in range(self.procs)
            ]:
                prewarm.result()
        except BaseException as exc:
            pool.shutdown(wait=False, cancel_futures=True)
            message = (
                f"fleet worker died during warm-up "
                f"(--eval-procs {self.procs}): {exc!r}. A worker "
                "process exited before serving its first batch -- "
                "check memory limits and engine imports in the worker "
                "environment"
            )
            if at_startup:
                raise FleetUnavailableError(message) from exc
            raise FleetUnavailableError(
                f"could not rebuild the worker pool: {message}"
            ) from exc
        return pool

    def _current_pool(self) -> Tuple[ProcessPoolExecutor, int]:
        """The live pool and its generation (for rebuild coordination)."""
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("EvalFleet is closed")
            if self._pool is None or self._broken:
                raise FleetUnavailableError(
                    "fleet worker pool is gone and could not be rebuilt"
                )
            return self._pool, self._generation

    def _ensure_rebuilt(self, broken_generation: int) -> None:
        """Rebuild the pool generation that just broke (exactly once).

        Several scheduler threads can observe the same broken pool;
        the generation guard makes the first one rebuild and the rest
        reuse its result.  A failed rebuild marks the fleet broken so
        callers degrade instead of rebuild-storming.
        """
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("EvalFleet is closed")
            if self._broken:
                raise FleetUnavailableError(
                    "fleet worker pool is gone and could not be rebuilt"
                )
            if self._generation != broken_generation:
                return  # another thread already rebuilt
            old, self._pool = self._pool, None
            if old is not None:
                with suppress(Exception):
                    old.shutdown(wait=False, cancel_futures=True)
            try:
                self._pool = self._make_pool()
            except FleetUnavailableError:
                self._broken = True
                raise
            self._generation += 1
            with self._lock:
                self._counters["pool_rebuilds"] += 1

    def _submit_bucket(
        self, bucket: Bucket, timed: bool = False
    ) -> Tuple[int, "Future", float]:
        """Submit one bucket, riding through an already-broken pool.

        A pool killed *between* batches breaks at ``submit`` time, not
        at ``result`` time; rebuild and resubmit.  Termination is
        guaranteed because a rebuild either yields a warm, verified
        pool or raises :class:`FleetUnavailableError`.  Returns the
        submit timestamp too (the bucket span's start when traced).
        """
        payload = [p.to_dict() for _, p in bucket]
        while True:
            pool, generation = self._current_pool()
            try:
                t_sub = time.perf_counter() if timed else 0.0
                return generation, pool.submit(
                    _evaluate_bucket, payload, self._poison_seeds, timed
                ), t_sub
            except BrokenProcessPool:
                self._ensure_rebuilt(generation)
            except RuntimeError:
                # shutdown raced with us; report through the usual path
                self._current_pool()
                raise

    def _kill_one_worker(self) -> None:
        """Chaos hook: SIGKILL the lowest-pid live worker (``kill@N``)."""
        with self._pool_lock:
            pool = self._pool
        processes = getattr(pool, "_processes", None) or {}
        for pid in sorted(processes):
            with suppress(ProcessLookupError, PermissionError):
                os.kill(pid, signal.SIGKILL)
            return

    # -- evaluation ----------------------------------------------------------
    def evaluate(
        self, points: Sequence[ScenarioPoint]
    ) -> List[Dict[str, Any]]:
        """Evaluate one scheduler batch across the fleet, in order.

        Bucket planning depends only on point content and order --
        never on ``procs`` -- and every bucket is evaluated through
        the placement-invariant packed path, so the records match an
        in-process :func:`evaluate_points_packed` call bit for bit,
        **including across pool rebuilds**: a retried bucket replays
        the exact per-point RNG streams the crashed attempt started.
        """
        self._current_pool()  # closed/broken checks up front
        if not points:
            return []
        batch_fault = None
        if self._injector is not None:
            fault = self._injector.eval_call()
            if fault.delay_s > 0:
                time.sleep(fault.delay_s)
            if fault.raise_now:
                raise InjectedFault(
                    f"injected evaluation failure "
                    f"(eval call {fault.ordinal})"
                )
            batch_fault = self._injector.fleet_batch()
        if self._quarantine:
            for point in points:
                key = cache_key(point)
                if key in self._quarantine:
                    raise PoisonPointError(
                        f"point {key} is quarantined: it repeatedly "
                        "crashed fleet workers and will not be "
                        "re-evaluated"
                    )
        # Observability: the thread-local sink is armed by the
        # scheduler (same executor thread) only when a request trace
        # is riding this batch; ``timed`` buckets report per-worker
        # spans through it without touching the records themselves.
        sink = current_sink() if self._obs is not None else None
        timed = sink is not None
        # Index-keyed items: input position is the reassembly address
        # (cache keys may legitimately repeat within a batch).
        items = [(str(i), p) for i, p in enumerate(points)]
        total_rows = sum(point_rows(p) for p in points)
        budget = min(
            self.pack_rows,
            max(1, -(-total_rows // self.procs)),
        )
        t_plan0 = time.perf_counter() if self._obs is not None else 0.0
        buckets = plan_job_buckets(items, budget)
        if self._obs is not None:
            for b in buckets:
                self._obs.h_bucket_rows.observe(bucket_rows(b))
            if sink is not None:
                sink.add(
                    "pack",
                    t_plan0,
                    time.perf_counter(),
                    {"buckets": len(buckets), "bucket_budget": budget},
                )
        out: List[Optional[Dict[str, Any]]] = [None] * len(points)
        # (bucket, crashes-so-far) work list; crashed buckets re-enter
        # it until their retry budget is spent, then split in half.
        pending: List[Tuple[Bucket, int]] = [(b, 0) for b in buckets]
        first_round = True
        # A dead worker breaks EVERY in-flight future, so a concurrent
        # crash cannot be blamed on any one bucket -- an innocent
        # sharing the pool with a poisonous point must not accumulate
        # strikes toward quarantine.  After the first crash we run one
        # bucket per round: a bucket that then crashes did it alone,
        # and only those solo crashes count.
        serial = False
        while pending:
            if serial:
                round_items, pending = [pending[0]], pending[1:]
            else:
                round_items, pending = list(pending), []
            submitted = [
                (bucket, crashes, *self._submit_bucket(bucket, timed))
                for bucket, crashes in round_items
            ]
            if (
                first_round
                and batch_fault is not None
                and batch_fault.kill
            ):
                self._kill_one_worker()
            first_round = False
            solo = len(submitted) == 1
            for bucket, crashes, generation, future, t_sub in submitted:
                try:
                    answer = future.result()
                except BrokenProcessPool:
                    self._ensure_rebuilt(generation)
                    if solo:
                        pending.extend(
                            self._plan_retry(bucket, crashes + 1)
                        )
                    else:
                        pending.append((bucket, crashes))
                    serial = True
                    continue
                if timed and isinstance(answer, dict):
                    records = answer["records"]
                    sink.add(
                        "bucket",
                        t_sub,
                        time.perf_counter(),
                        {
                            "points": len(bucket),
                            "rows": bucket_rows(bucket),
                            "worker_pid": answer["pid"],
                            "worker_eval_ms": round(
                                1e3 * answer["eval_s"], 3
                            ),
                        },
                    )
                else:
                    records = answer
                for (key, _), record in zip(bucket, records):
                    out[int(key)] = record
        with self._lock:
            self._counters["batches"] += 1
            self._counters["buckets"] += len(buckets)
            self._counters["points"] += len(points)
            self._counters["rows"] += total_rows
            self._counters["max_bucket_rows"] = max(
                self._counters["max_bucket_rows"],
                max(bucket_rows(b) for b in buckets),
            )
            self._counters["max_batch_buckets"] = max(
                self._counters["max_batch_buckets"], len(buckets)
            )
        return out  # type: ignore[return-value]

    def _plan_retry(
        self, bucket: Bucket, crashes: int
    ) -> List[Tuple[Bucket, int]]:
        """Decide a crashed bucket's fate: retry, bisect or quarantine.

        Retries are bounded (``bucket_retries``); past the budget a
        multi-point bucket splits in half -- each half re-entering with
        one remaining attempt, so a genuinely poisonous point is
        cornered in ~log2(bucket) extra crashes -- and a single
        repeatedly-crashing point is convicted and quarantined.
        """
        with self._lock:
            self._counters["bucket_retries"] += 1
        if crashes <= self.bucket_retries:
            return [(bucket, crashes)]
        if len(bucket) > 1:
            with self._lock:
                self._counters["bisections"] += 1
            mid = len(bucket) // 2
            resume_at = max(self.bucket_retries, 1) - 1
            return [
                (bucket[:mid], resume_at),
                (bucket[mid:], resume_at),
            ]
        key = cache_key(bucket[0][1])
        self._quarantine.add(key)
        with self._lock:
            self._counters["quarantined_points"] += 1
        raise PoisonPointError(
            f"point {key} crashed a fleet worker "
            f"{crashes} time(s) (pool rebuilt each time) and is now "
            "quarantined; it will answer as a per-point error"
        )

    # -- introspection / lifecycle -------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``"evaluator"`` section of ``GET /v1/stats``."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "procs": self.procs,
            "pack_rows": self.pack_rows,
            "bucket_retries": self.bucket_retries,
            "quarantine_size": len(self._quarantine),
            "broken": self._broken,
            "counters": counters,
        }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "EvalFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
