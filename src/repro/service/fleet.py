"""Resident process fleet behind the micro-batch scheduler.

One daemon process tops out at roughly one core of Monte-Carlo: the
:class:`~repro.service.scheduler.MicroBatchScheduler` evaluates its
mega-batches on an in-process thread pool, and NumPy holds the GIL for
only part of each engine call.  :class:`EvalFleet` lifts that ceiling
by fanning every scheduler batch out to **N resident worker
processes**:

* The pool is created once at service startup (fork context, the
  campaign executor's precedent) and stays warm -- each worker keeps
  its imports, schedule/optimisation memo caches and NumPy buffers
  across batches, so per-batch cost is IPC plus compute, never
  interpreter start-up.
* Each batch is carved into row-budgeted buckets by the **same
  planner the jobs layer uses**
  (:func:`repro.service.jobs.fair_share.plan_job_buckets`):
  compatibility bucketing plus row-budget splitting, with the budget
  shrunk to ``ceil(total_rows / procs)`` so one batch spreads across
  the whole fleet instead of filling one worker's default budget.
* Workers evaluate through
  :func:`~repro.campaign.executor.evaluate_points_packed`, whose
  per-point records are **bit-identical** to solo
  :func:`~repro.campaign.executor.evaluate_point` runs under any
  packing -- ``tier_rng``'s placement-invariant per-point streams make
  the worker count invisible in the results.  The fleet reassembles
  records in input order, so swapping it in for in-process evaluation
  changes throughput and nothing else.

The scheduler takes the fleet as its injectable ``evaluate`` callable
(``MicroBatchScheduler(..., evaluate=fleet.evaluate)``); ``repro serve
--eval-procs N`` wires it up, and the fleet's counters surface under
``"fleet"`` in ``GET /v1/stats``.

Failure isolation note: the scheduler already quarantines a failing
batch by re-running its points solo; a point that raises inside a
worker propagates out of :meth:`EvalFleet.evaluate` exactly like an
in-process failure, so that machinery keeps working unchanged.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.executor import DEFAULT_PACK_ROWS
from repro.campaign.spec import ScenarioPoint
from repro.service.jobs.fair_share import (
    bucket_rows,
    plan_job_buckets,
    point_rows,
)


def _warm_worker() -> None:
    """Pool initializer: pay the heavy imports once per worker.

    Under ``fork`` the parent's modules arrive pre-imported, but under
    ``spawn`` (or a parent that forked before importing the engine)
    this is where each resident worker loads NumPy and the simulation
    tiers -- before the first batch, not during it.
    """
    import repro.campaign.executor  # noqa: F401
    import repro.simulation.packed_engine  # noqa: F401


def _noop() -> None:
    """Spawn-forcing task; see the prewarm in :class:`EvalFleet`."""


def _evaluate_bucket(
    point_dicts: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Worker entry: one row-budgeted bucket of serialised points."""
    from repro.campaign.executor import evaluate_points_packed

    points = [ScenarioPoint.from_dict(d) for d in point_dicts]
    return evaluate_points_packed(points)


class EvalFleet:
    """A resident process pool evaluating scheduler batches.

    ``procs`` is the worker count; ``pack_rows`` bounds one bucket's
    Monte-Carlo rows (the effective budget also shrinks to spread each
    batch across the fleet).  :meth:`evaluate` is thread-safe -- the
    scheduler calls it from several executor threads at once and
    ``ProcessPoolExecutor.submit`` serialises internally.
    """

    def __init__(
        self,
        procs: int,
        *,
        pack_rows: int = DEFAULT_PACK_ROWS,
    ):
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if pack_rows < 1:
            raise ValueError(f"pack_rows must be >= 1, got {pack_rows}")
        self.procs = int(procs)
        self.pack_rows = int(pack_rows)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.procs,
            mp_context=context,
            initializer=_warm_worker,
        )
        # Force every worker to fork NOW, not lazily on first batch:
        # the executor spawns one process per submit while none are
        # idle, and the service creates the fleet *before* binding its
        # listening socket -- forking later would hand each worker a
        # copy of live connection FDs, holding client connections open
        # long after the server closes them.
        for prewarm in [
            self._pool.submit(_noop) for _ in range(self.procs)
        ]:
            prewarm.result()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "batches": 0,
            "buckets": 0,
            "points": 0,
            "rows": 0,
            "max_bucket_rows": 0,
            "max_batch_buckets": 0,
        }

    # -- evaluation ----------------------------------------------------------
    def evaluate(
        self, points: Sequence[ScenarioPoint]
    ) -> List[Dict[str, Any]]:
        """Evaluate one scheduler batch across the fleet, in order.

        Bucket planning depends only on point content and order --
        never on ``procs`` -- and every bucket is evaluated through
        the placement-invariant packed path, so the records match an
        in-process :func:`evaluate_points_packed` call bit for bit.
        """
        if self._pool is None:
            raise RuntimeError("EvalFleet is closed")
        if not points:
            return []
        # Index-keyed items: input position is the reassembly address
        # (cache keys may legitimately repeat within a batch).
        items = [(str(i), p) for i, p in enumerate(points)]
        total_rows = sum(point_rows(p) for p in points)
        budget = min(
            self.pack_rows,
            max(1, -(-total_rows // self.procs)),
        )
        buckets = plan_job_buckets(items, budget)
        futures = [
            (
                bucket,
                self._pool.submit(
                    _evaluate_bucket, [p.to_dict() for _, p in bucket]
                ),
            )
            for bucket in buckets
        ]
        out: List[Optional[Dict[str, Any]]] = [None] * len(points)
        for bucket, future in futures:
            for (key, _), record in zip(bucket, future.result()):
                out[int(key)] = record
        with self._lock:
            self._counters["batches"] += 1
            self._counters["buckets"] += len(buckets)
            self._counters["points"] += len(points)
            self._counters["rows"] += total_rows
            self._counters["max_bucket_rows"] = max(
                self._counters["max_bucket_rows"],
                max(bucket_rows(b) for b in buckets),
            )
            self._counters["max_batch_buckets"] = max(
                self._counters["max_batch_buckets"], len(buckets)
            )
        return out  # type: ignore[return-value]

    # -- introspection / lifecycle -------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``"fleet"`` section of ``GET /v1/stats``."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "procs": self.procs,
            "pack_rows": self.pack_rows,
            "counters": counters,
        }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "EvalFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
