"""Blocking client for the evaluation service (stdlib ``http.client``).

One :class:`ServiceClient` holds one keep-alive connection; a stale or
dropped connection (daemon restart, idle timeout) is re-opened and the
request retried once -- safe because evaluation is deterministic and
cached, so a duplicate request is answered from the daemon's cache
rather than recomputed.

``repro query`` is a thin CLI wrapper around this class.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.campaign.spec import ScenarioPoint
from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

#: Anything evaluate() accepts as one point.
PointLike = Union[ScenarioPoint, Mapping[str, Any]]


class ServiceError(RuntimeError):
    """The service was unreachable or answered with an error."""

    def __init__(self, message: str, *, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class EvaluateResult:
    """An ``/v1/evaluate`` answer: cache keys and records, in order."""

    keys: List[str]
    records: List[Dict[str, Any]]


class ServiceClient:
    """A blocking HTTP client bound to one daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        while True:
            reused = self._conn is not None
            try:
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                self._conn.request(
                    method, path, body=body, headers=headers
                )
                response = self._conn.getresponse()
                status = response.status
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                # Only a dead kept-alive connection warrants a retry
                # (it looks like a drop on the first write/read).
                # Fresh-connection failures and timeouts are real --
                # retrying would double the wait and mask the error.
                if not reused or isinstance(exc, TimeoutError):
                    raise ServiceError(
                        f"cannot reach repro service at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"non-JSON response from {self.host}:{self.port} "
                f"(status {status}): {exc}",
                status=status,
            ) from None
        if status != 200:
            raise ServiceError(
                data.get("error", f"service answered {status}"),
                status=status,
            )
        return data

    def close(self) -> None:
        """Drop the connection (it reopens on the next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    def evaluate(self, points: Sequence[PointLike]) -> EvaluateResult:
        """``POST /v1/evaluate`` a batch of points, answers in order."""
        dicts = [
            p.to_dict() if isinstance(p, ScenarioPoint) else dict(p)
            for p in points
        ]
        data = self._request(
            "POST", "/v1/evaluate", {"points": dicts}
        )
        return EvaluateResult(
            keys=list(data["keys"]), records=list(data["records"])
        )

    def evaluate_one(self, point: PointLike) -> Dict[str, Any]:
        """Evaluate a single point, returning its record."""
        return self.evaluate([point]).records[0]
