"""Blocking client for the evaluation service (stdlib ``http.client``).

One :class:`ServiceClient` holds one keep-alive connection; a stale or
dropped connection (daemon restart, idle timeout) is re-opened and the
request retried once -- but **only for idempotent requests**.
``/v1/evaluate`` qualifies despite being a POST (evaluation is
deterministic and cached, a duplicate is answered from the daemon's
cache); ``POST /v1/campaign`` qualifies only because
:meth:`~ServiceClient.submit_campaign` attaches an idempotency key,
making the daemon deduplicate a resubmission.  A non-idempotent
request on a dead connection raises instead of silently doubling the
side effect.

Since protocol 3 the daemon may answer ``429`` (rate-limited, with
``Retry-After``) or ``503`` (load shed).  The client honours
``Retry-After`` by sleeping and retrying up to ``retry_429`` times;
``503`` and an exhausted 429 budget surface as :class:`ServiceError`
with the status (and ``retry_after`` when the daemon supplied one) so
callers can implement their own back-off.

``repro query`` is a thin CLI wrapper around this class; ``repro
submit`` / ``repro jobs`` / ``repro results`` wrap the jobs methods
(:meth:`ServiceClient.submit_campaign`, :meth:`~ServiceClient.jobs`,
:meth:`~ServiceClient.iter_results`...), which drive the daemon's
campaign-as-a-service API (:mod:`repro.service.jobs`).
"""

from __future__ import annotations

import http.client
import json
import queue
import secrets
import threading
import time
import urllib.parse
from contextlib import suppress
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.campaign.spec import CampaignSpec, ScenarioPoint
from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

#: Anything evaluate() accepts as one point.
PointLike = Union[ScenarioPoint, Mapping[str, Any]]


class ServiceError(RuntimeError):
    """The service was unreachable or answered with an error.

    ``status`` is the HTTP status when one was received;
    ``retry_after`` carries the daemon's back-off hint (seconds) on a
    rate-limit rejection the client did not absorb itself.
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclass(frozen=True)
class EvaluateResult:
    """An ``/v1/evaluate`` answer: cache keys and records, in order.

    Since protocol 2 a failed point's record is ``{"error": ...}``
    (plus its labels) rather than the whole request failing;
    ``n_failed`` counts them.
    """

    keys: List[str]
    records: List[Dict[str, Any]]
    n_failed: int = field(default=0)
    #: Daemon-assigned request trace ID (protocol 4); look the request
    #: up in ``GET /v1/trace/<id>`` while it is still in the ring.
    trace_id: Optional[str] = field(default=None)


def _parse_evaluate(data: Dict[str, Any]) -> EvaluateResult:
    trace_id = data.get("trace_id")
    return EvaluateResult(
        keys=list(data["keys"]),
        records=list(data["records"]),
        n_failed=int(data.get("n_failed", 0)),
        trace_id=trace_id if isinstance(trace_id, str) else None,
    )


class ServiceClient:
    """A blocking HTTP client bound to one daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 300.0,
        client_name: Optional[str] = None,
        retry_429: int = 2,
        max_retry_after_s: float = 30.0,
        connect_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        #: Identity sent as ``X-Repro-Client`` -- the name admission
        #: control and job fair-share account this client under.
        self.client_name = client_name
        #: How many 429s to absorb per request by honouring
        #: ``Retry-After``; 0 surfaces every 429 to the caller.
        self.retry_429 = int(retry_429)
        #: Never sleep longer than this per honoured 429 -- a daemon
        #: asking for more is effectively saying "come back later".
        self.max_retry_after_s = float(max_retry_after_s)
        #: Extra attempts after a refused connection (daemon restart
        #: window); safe for *every* method because a refused connect
        #: provably never reached the daemon.
        self.connect_retries = int(connect_retries)
        #: Exponential back-off between connect retries:
        #: ``base * 2^(attempt-1)`` capped at ``backoff_max_s``.
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        #: Resilience counters, aggregated by ``repro loadtest``
        #: reports: connect retries spent, hedges fired, hedge wins.
        self.counters: Dict[str, int] = {
            "connect_retries": 0,
            "hedges_fired": 0,
            "hedge_wins": 0,
        }
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------
    def _send(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
        *,
        idempotent: bool,
    ):
        """One exchange, reconnecting through a dead keep-alive.

        The stale-connection retry applies only to ``idempotent``
        requests: a POST with side effects that dies mid-flight is
        ambiguous (the daemon may have processed it), so it surfaces
        as an error rather than being silently re-sent.  A *refused*
        connection is different -- the request provably never reached
        the daemon -- so it gets ``connect_retries`` extra attempts
        with exponential back-off regardless of method (covers the
        daemon-restart window).
        """
        connect_attempts = 0
        while True:
            reused = self._conn is not None
            try:
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                self._conn.request(
                    method, path, body=body, headers=headers
                )
                response = self._conn.getresponse()
                return (
                    response.status,
                    response.read(),
                    response.getheader("Retry-After"),
                )
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                if (
                    isinstance(exc, ConnectionRefusedError)
                    and connect_attempts < self.connect_retries
                ):
                    connect_attempts += 1
                    self.counters["connect_retries"] += 1
                    time.sleep(
                        min(
                            self.backoff_max_s,
                            self.backoff_base_s
                            * (2 ** (connect_attempts - 1)),
                        )
                    )
                    continue
                # Only a dead kept-alive connection warrants a retry
                # (it looks like a drop on the first write/read).
                # Fresh-connection failures and timeouts are real --
                # retrying would double the wait and mask the error.
                if not reused or isinstance(exc, TimeoutError):
                    raise ServiceError(
                        f"cannot reach repro service at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                if not idempotent:
                    raise ServiceError(
                        f"connection to {self.host}:{self.port} dropped "
                        f"mid-request: {exc}; not retrying a "
                        f"non-idempotent {method} (the daemon may have "
                        "already processed it)"
                    ) from exc

    def _request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        idempotent: Optional[bool] = None,
    ) -> Dict[str, Any]:
        if idempotent is None:
            idempotent = method in ("GET", "HEAD", "PUT", "DELETE")
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        if self.client_name:
            headers["X-Repro-Client"] = self.client_name
        budget_429 = max(0, self.retry_429)
        while True:
            status, raw, retry_header = self._send(
                method, path, body, headers, idempotent=idempotent
            )
            try:
                data = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ServiceError(
                    f"non-JSON response from {self.host}:{self.port} "
                    f"(status {status}): {exc}",
                    status=status,
                ) from None
            if status == 200:
                return data
            retry_after: Optional[float] = None
            if isinstance(data, dict) and isinstance(
                data.get("retry_after_s"), (int, float)
            ):
                retry_after = float(data["retry_after_s"])
            elif retry_header is not None:
                try:
                    retry_after = float(retry_header)
                except ValueError:
                    retry_after = None
            if (
                status == 429
                and budget_429 > 0
                and retry_after is not None
                and retry_after <= self.max_retry_after_s
            ):
                budget_429 -= 1
                time.sleep(max(0.0, retry_after))
                continue
            raise ServiceError(
                data.get("error", f"service answered {status}")
                if isinstance(data, dict)
                else f"service answered {status}",
                status=status,
                retry_after=retry_after,
            )

    def close(self) -> None:
        """Drop the connection (it reopens on the next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    def evaluate(
        self,
        points: Sequence[PointLike],
        *,
        hedge_after_s: Optional[float] = None,
    ) -> EvaluateResult:
        """``POST /v1/evaluate`` a batch of points, answers in order.

        ``hedge_after_s`` arms a hedged request: if no answer arrives
        within that many seconds, an identical request is fired on a
        second connection and the first answer wins.  Evaluation is
        deterministic and the daemon coalesces duplicate in-flight
        points, so the loser costs (almost) nothing server-side.
        ``None`` (the default) never hedges.
        """
        dicts = [
            p.to_dict() if isinstance(p, ScenarioPoint) else dict(p)
            for p in points
        ]
        payload = {"points": dicts}
        if hedge_after_s is not None:
            return self._hedged_evaluate(payload, hedge_after_s)
        # POST by verb, idempotent by construction: evaluation is
        # deterministic and cached, so re-sending over a fresh
        # connection cannot change any answer.
        data = self._request(
            "POST", "/v1/evaluate", payload, idempotent=True
        )
        return _parse_evaluate(data)

    def _clone(self) -> "ServiceClient":
        """A fresh client with this one's configuration (no shared conn)."""
        return ServiceClient(
            self.host,
            self.port,
            timeout=self.timeout,
            client_name=self.client_name,
            retry_429=self.retry_429,
            max_retry_after_s=self.max_retry_after_s,
            connect_retries=self.connect_retries,
            backoff_base_s=self.backoff_base_s,
            backoff_max_s=self.backoff_max_s,
        )

    def _hedged_evaluate(
        self, payload: Dict[str, Any], hedge_after_s: float
    ) -> EvaluateResult:
        """Primary + (maybe) one hedge, first answer wins.

        Both attempts run on fresh throwaway connections in daemon
        threads -- never the shared keep-alive connection, so an
        abandoned loser can block on its read forever without
        corrupting this client's next request or wedging interpreter
        exit (daemon threads are never joined).
        """
        answers: "queue.Queue" = queue.Queue()

        def attempt(kind: str) -> None:
            peer = self._clone()
            try:
                data = peer._request(
                    "POST", "/v1/evaluate", payload, idempotent=True
                )
                answers.put((kind, data, None))
            except BaseException as exc:
                answers.put((kind, None, exc))
            finally:
                with suppress(Exception):
                    peer.close()
                self.counters["connect_retries"] += (
                    peer.counters["connect_retries"]
                )

        threading.Thread(
            target=attempt, args=("primary",), daemon=True
        ).start()
        outstanding = 1
        hedged = False
        first_error: Optional[BaseException] = None
        while True:
            try:
                kind, data, exc = answers.get(
                    timeout=None if hedged else max(0.0, hedge_after_s)
                )
            except queue.Empty:
                # Hedging is a tail-latency tool, not a retry loop:
                # at most one duplicate, then wait for whoever answers.
                hedged = True
                outstanding += 1
                self.counters["hedges_fired"] += 1
                threading.Thread(
                    target=attempt, args=("hedge",), daemon=True
                ).start()
                continue
            outstanding -= 1
            if exc is None:
                if kind == "hedge":
                    self.counters["hedge_wins"] += 1
                return _parse_evaluate(data)
            if first_error is None:
                first_error = exc
            if outstanding == 0:
                raise first_error

    def evaluate_one(self, point: PointLike) -> Dict[str, Any]:
        """Evaluate a single point, returning its record."""
        return self.evaluate([point]).records[0]

    # -- jobs API ------------------------------------------------------------
    def submit_campaign(
        self,
        spec: Union[CampaignSpec, Mapping[str, Any]],
        client: Optional[str] = None,
        *,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/campaign``: register a background job.

        Returns the new job's document immediately; the campaign runs
        server-side (poll with :meth:`job`, stream with
        :meth:`iter_results`).

        A fresh ``idempotency_key`` is generated when none is given,
        so the submission is safe to retry over a dropped connection:
        the daemon answers a resubmission with the job the first
        attempt created instead of starting a duplicate.  Pass your
        own key to make retries safe across *client* restarts too.
        """
        spec_dict = (
            spec.to_dict() if isinstance(spec, CampaignSpec) else dict(spec)
        )
        if idempotency_key is None:
            idempotency_key = "ck-" + secrets.token_hex(8)
        payload: Dict[str, Any] = {
            "spec": spec_dict,
            "idempotency_key": idempotency_key,
        }
        if client is not None:
            payload["client"] = client
        return self._request(
            "POST", "/v1/campaign", payload, idempotent=True
        )["job"]

    def jobs(self, client: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /v1/jobs``: job documents, oldest first."""
        path = "/v1/jobs"
        if client is not None:
            path += "?" + urllib.parse.urlencode({"client": client})
        return list(self._request("GET", path)["jobs"])

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>``: one job's state and progress."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def job_results(
        self, job_id: str, *, offset: int = 0, limit: int = 256
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/results``: one page of finished records."""
        query = urllib.parse.urlencode(
            {"offset": offset, "limit": limit}
        )
        return self._request(
            "GET", f"/v1/jobs/{job_id}/results?{query}"
        )

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cancel (idempotent on terminal)."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def iter_results(
        self,
        job_id: str,
        *,
        offset: int = 0,
        limit: int = 256,
        poll_seconds: float = 0.2,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a job's records in point order as they finish.

        Yields every record from ``offset`` on, polling while the job
        is still running; concatenating the yields reproduces
        ``repro campaign run``'s record list exactly.  Stops early if
        the job reaches a terminal state with points still unresolved
        (a cancelled job's tail never arrives).
        """
        while True:
            page = self.job_results(job_id, offset=offset, limit=limit)
            for record in page["records"]:
                yield record
            offset = page["next_offset"]
            if offset >= page["total"]:
                return
            if not page["records"] and page["state"] in (
                "done", "failed", "cancelled"
            ):
                return  # terminal with a permanently missing tail
            if not page["records"]:
                time.sleep(poll_seconds)

    def wait_job(
        self,
        job_id: str,
        *,
        poll_seconds: float = 0.2,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final document."""
        t0 = time.monotonic()
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if (
                timeout is not None
                and time.monotonic() - t0 > timeout
            ):
                raise ServiceError(
                    f"job {job_id} still {doc['state']!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_seconds)
