"""Blocking client for the evaluation service (stdlib ``http.client``).

One :class:`ServiceClient` holds one keep-alive connection; a stale or
dropped connection (daemon restart, idle timeout) is re-opened and the
request retried once -- safe because evaluation is deterministic and
cached, so a duplicate request is answered from the daemon's cache
rather than recomputed.

``repro query`` is a thin CLI wrapper around this class; ``repro
submit`` / ``repro jobs`` / ``repro results`` wrap the jobs methods
(:meth:`ServiceClient.submit_campaign`, :meth:`~ServiceClient.jobs`,
:meth:`~ServiceClient.iter_results`...), which drive the daemon's
campaign-as-a-service API (:mod:`repro.service.jobs`).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.campaign.spec import CampaignSpec, ScenarioPoint
from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

#: Anything evaluate() accepts as one point.
PointLike = Union[ScenarioPoint, Mapping[str, Any]]


class ServiceError(RuntimeError):
    """The service was unreachable or answered with an error."""

    def __init__(self, message: str, *, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class EvaluateResult:
    """An ``/v1/evaluate`` answer: cache keys and records, in order.

    Since protocol 2 a failed point's record is ``{"error": ...}``
    (plus its labels) rather than the whole request failing;
    ``n_failed`` counts them.
    """

    keys: List[str]
    records: List[Dict[str, Any]]
    n_failed: int = field(default=0)


class ServiceClient:
    """A blocking HTTP client bound to one daemon."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> Dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        while True:
            reused = self._conn is not None
            try:
                if self._conn is None:
                    self._conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                self._conn.request(
                    method, path, body=body, headers=headers
                )
                response = self._conn.getresponse()
                status = response.status
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ) as exc:
                self.close()
                # Only a dead kept-alive connection warrants a retry
                # (it looks like a drop on the first write/read).
                # Fresh-connection failures and timeouts are real --
                # retrying would double the wait and mask the error.
                if not reused or isinstance(exc, TimeoutError):
                    raise ServiceError(
                        f"cannot reach repro service at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"non-JSON response from {self.host}:{self.port} "
                f"(status {status}): {exc}",
                status=status,
            ) from None
        if status != 200:
            raise ServiceError(
                data.get("error", f"service answered {status}"),
                status=status,
            )
        return data

    def close(self) -> None:
        """Drop the connection (it reopens on the next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- endpoints ----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._request("GET", "/v1/stats")

    def evaluate(self, points: Sequence[PointLike]) -> EvaluateResult:
        """``POST /v1/evaluate`` a batch of points, answers in order."""
        dicts = [
            p.to_dict() if isinstance(p, ScenarioPoint) else dict(p)
            for p in points
        ]
        data = self._request(
            "POST", "/v1/evaluate", {"points": dicts}
        )
        return EvaluateResult(
            keys=list(data["keys"]),
            records=list(data["records"]),
            n_failed=int(data.get("n_failed", 0)),
        )

    def evaluate_one(self, point: PointLike) -> Dict[str, Any]:
        """Evaluate a single point, returning its record."""
        return self.evaluate([point]).records[0]

    # -- jobs API ------------------------------------------------------------
    def submit_campaign(
        self,
        spec: Union[CampaignSpec, Mapping[str, Any]],
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/campaign``: register a background job.

        Returns the new job's document immediately; the campaign runs
        server-side (poll with :meth:`job`, stream with
        :meth:`iter_results`).
        """
        spec_dict = (
            spec.to_dict() if isinstance(spec, CampaignSpec) else dict(spec)
        )
        payload: Dict[str, Any] = {"spec": spec_dict}
        if client is not None:
            payload["client"] = client
        return self._request("POST", "/v1/campaign", payload)["job"]

    def jobs(self, client: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /v1/jobs``: job documents, oldest first."""
        path = "/v1/jobs"
        if client is not None:
            path += "?" + urllib.parse.urlencode({"client": client})
        return list(self._request("GET", path)["jobs"])

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>``: one job's state and progress."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def job_results(
        self, job_id: str, *, offset: int = 0, limit: int = 256
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/results``: one page of finished records."""
        query = urllib.parse.urlencode(
            {"offset": offset, "limit": limit}
        )
        return self._request(
            "GET", f"/v1/jobs/{job_id}/results?{query}"
        )

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cancel (idempotent on terminal)."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def iter_results(
        self,
        job_id: str,
        *,
        offset: int = 0,
        limit: int = 256,
        poll_seconds: float = 0.2,
    ) -> Iterator[Dict[str, Any]]:
        """Stream a job's records in point order as they finish.

        Yields every record from ``offset`` on, polling while the job
        is still running; concatenating the yields reproduces
        ``repro campaign run``'s record list exactly.  Stops early if
        the job reaches a terminal state with points still unresolved
        (a cancelled job's tail never arrives).
        """
        while True:
            page = self.job_results(job_id, offset=offset, limit=limit)
            for record in page["records"]:
                yield record
            offset = page["next_offset"]
            if offset >= page["total"]:
                return
            if not page["records"] and page["state"] in (
                "done", "failed", "cancelled"
            ):
                return  # terminal with a permanently missing tail
            if not page["records"]:
                time.sleep(poll_seconds)

    def wait_job(
        self,
        job_id: str,
        *,
        poll_seconds: float = 0.2,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final document."""
        t0 = time.monotonic()
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if (
                timeout is not None
                and time.monotonic() - t0 > timeout
            ):
                raise ServiceError(
                    f"job {job_id} still {doc['state']!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_seconds)
