"""Deterministic fault injection for the serving stack.

The paper this repository reproduces is about resilience patterns
against fail-stop and silent errors; this module applies the same
discipline to the service itself.  A :class:`FaultPlan` is a seeded,
fully deterministic schedule of failures -- *kill a fleet worker at
batch N*, *raise inside evaluation call N*, *delay evaluation call N by
S seconds*, *drop HTTP connection N before answering*, *hard-exit any
worker that evaluates seed S* -- threaded behind ``repro serve
--faults`` (or the ``REPRO_FAULTS`` environment variable) so tests,
benchmarks and the CI smoke can replay identical failure scenarios and
assert identical recoveries.

Plan grammar (comma-separated directives)::

    kill@N        kill one fleet worker process at fleet batch N
    raise@N       raise InjectedFault at evaluation call N
    delay@N:S     sleep S seconds before evaluation call N
    drop@N        close HTTP connection N without answering
    poison@SEED   worker hard-exits when a bucket contains a simulate
                  point with this seed (exercises bisection quarantine)
    crash-prewarm worker processes die during constructor warm-up
                  (exercises the fail-fast startup path)

``FaultPlan.parse`` also accepts the same schedule as a JSON object
(``{"kill": [2], "delay": {"3": 0.1}, ...}``).  Ordinals are 1-based
and counted by the :class:`FaultInjector`, whose counters surface under
``"faults"`` in ``GET /v1/stats``.

The error taxonomy the recovery machinery shares also lives here (this
module imports nothing from the rest of the service, so every layer
can import it without cycles):

* :class:`InjectedFault` -- a scheduled ``raise@N`` firing; handled by
  the scheduler's existing failed-batch isolation.
* :class:`FleetUnavailableError` -- the fleet's worker pool could not
  be (re)built; the scheduler's circuit breaker counts these and
  degrades to in-process evaluation.
* :class:`PoisonPointError` -- a single point repeatedly crashed
  workers and was quarantined; surfaces as a per-point error record,
  never as a dead fleet.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional

#: Environment variable consulted when no explicit plan is configured.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """A scheduled ``raise@N`` directive firing inside evaluation."""


class FleetUnavailableError(RuntimeError):
    """The fleet's worker pool is gone and could not be rebuilt.

    This is an *infrastructure* failure (fork failing, warm-up dying
    repeatedly), not a property of any point -- the scheduler's circuit
    breaker reacts by evaluating in-process instead.
    """


class PoisonPointError(RuntimeError):
    """A point that repeatedly crashed workers has been quarantined.

    Raised instead of touching the pool again; the scheduler's
    failed-batch isolation turns it into a per-point ``error`` record
    while every innocent neighbour still answers.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure schedule (see the module docstring)."""

    #: Fleet batch ordinals at which one worker is SIGKILLed.
    kill_batches: FrozenSet[int] = frozenset()
    #: Evaluation call ordinals at which :class:`InjectedFault` raises.
    raise_evals: FrozenSet[int] = frozenset()
    #: Evaluation call ordinal -> injected delay in seconds.
    delay_evals: Mapping[int, float] = field(default_factory=dict)
    #: HTTP request ordinals whose connection is dropped unanswered.
    drop_requests: FrozenSet[int] = frozenset()
    #: Simulate seeds whose evaluation hard-exits the worker process.
    poison_seeds: FrozenSet[int] = frozenset()
    #: Fleet workers die during constructor warm-up (fail-fast path).
    crash_prewarm: bool = False

    @property
    def enabled(self) -> bool:
        return bool(
            self.kill_batches
            or self.raise_evals
            or self.delay_evals
            or self.drop_requests
            or self.poison_seeds
            or self.crash_prewarm
        )

    @property
    def touches_eval(self) -> bool:
        """Whether the in-process evaluate path needs wrapping."""
        return bool(self.raise_evals or self.delay_evals)

    def describe(self) -> str:
        """The canonical compact spec string for this plan."""
        parts = []
        parts += [f"kill@{n}" for n in sorted(self.kill_batches)]
        parts += [f"raise@{n}" for n in sorted(self.raise_evals)]
        parts += [
            f"delay@{n}:{self.delay_evals[n]:g}"
            for n in sorted(self.delay_evals)
        ]
        parts += [f"drop@{n}" for n in sorted(self.drop_requests)]
        parts += [f"poison@{s}" for s in sorted(self.poison_seeds)]
        if self.crash_prewarm:
            parts.append("crash-prewarm")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a compact directive string or a JSON schedule."""
        spec = (spec or "").strip()
        if not spec:
            return cls()
        if spec.startswith("{"):
            return cls._from_json(spec)
        kill, raises, drops, poison = set(), set(), set(), set()
        delays: Dict[int, float] = {}
        crash_prewarm = False
        for raw in spec.split(","):
            token = raw.strip()
            if not token:
                continue
            if token == "crash-prewarm":
                crash_prewarm = True
                continue
            name, sep, arg = token.partition("@")
            if not sep:
                raise ValueError(
                    f"invalid fault directive {token!r}: expected "
                    "NAME@ARG (e.g. kill@2, delay@3:0.1) or "
                    "crash-prewarm"
                )
            try:
                if name == "kill":
                    kill.add(cls._ordinal(arg))
                elif name == "raise":
                    raises.add(cls._ordinal(arg))
                elif name == "drop":
                    drops.add(cls._ordinal(arg))
                elif name == "poison":
                    poison.add(int(arg))
                elif name == "delay":
                    at, sep2, seconds = arg.partition(":")
                    if not sep2:
                        raise ValueError("expected delay@N:SECONDS")
                    delay_s = float(seconds)
                    if delay_s < 0:
                        raise ValueError("delay must be >= 0")
                    delays[cls._ordinal(at)] = delay_s
                else:
                    raise ValueError(
                        "unknown directive name "
                        f"{name!r} (kill/raise/delay/drop/poison)"
                    )
            except ValueError as exc:
                raise ValueError(
                    f"invalid fault directive {token!r}: {exc}"
                ) from None
        return cls(
            kill_batches=frozenset(kill),
            raise_evals=frozenset(raises),
            delay_evals=delays,
            drop_requests=frozenset(drops),
            poison_seeds=frozenset(poison),
            crash_prewarm=crash_prewarm,
        )

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        """The plan configured via ``REPRO_FAULTS`` (empty when unset)."""
        env = os.environ if environ is None else environ
        return cls.parse(env.get(FAULTS_ENV, ""))

    @staticmethod
    def _ordinal(arg: str) -> int:
        n = int(arg)
        if n < 1:
            raise ValueError("ordinals are 1-based")
        return n

    @classmethod
    def _from_json(cls, spec: str) -> "FaultPlan":
        try:
            data = json.loads(spec)
        except ValueError as exc:
            raise ValueError(f"invalid JSON fault plan: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError("JSON fault plan must be an object")
        known = {"kill", "raise", "delay", "drop", "poison",
                 "crash_prewarm"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            kill_batches=frozenset(int(n) for n in data.get("kill", [])),
            raise_evals=frozenset(int(n) for n in data.get("raise", [])),
            delay_evals={
                int(k): float(v)
                for k, v in dict(data.get("delay", {})).items()
            },
            drop_requests=frozenset(int(n) for n in data.get("drop", [])),
            poison_seeds=frozenset(
                int(s) for s in data.get("poison", [])
            ),
            crash_prewarm=bool(data.get("crash_prewarm", False)),
        )


@dataclass(frozen=True)
class EvalFault:
    """The injections due for one evaluation call."""

    ordinal: int
    raise_now: bool = False
    delay_s: float = 0.0


@dataclass(frozen=True)
class BatchFault:
    """The injections due for one fleet batch."""

    ordinal: int
    kill: bool = False


class FaultInjector:
    """Thread-safe ordinal counters driving one :class:`FaultPlan`.

    One injector spans the whole service: the fleet asks it before each
    batch, the evaluate wrapper before each engine call, the HTTP
    server before answering each request.  Every injected fault is
    counted, and :meth:`stats` is the ``"faults"`` section of
    ``GET /v1/stats`` -- so a chaos run can assert not just that the
    service survived, but that the scheduled faults actually fired.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._eval_calls = 0
        self._fleet_batches = 0
        self._requests = 0
        self._counters: Dict[str, int] = {
            "kills_injected": 0,
            "raises_injected": 0,
            "delays_injected": 0,
            "drops_injected": 0,
        }

    # -- schedule queries (each advances its ordinal) -------------------------
    def eval_call(self) -> EvalFault:
        """Advance the evaluation ordinal; report what fires now."""
        with self._lock:
            self._eval_calls += 1
            n = self._eval_calls
            raise_now = n in self.plan.raise_evals
            delay_s = float(self.plan.delay_evals.get(n, 0.0))
            if raise_now:
                self._counters["raises_injected"] += 1
            if delay_s > 0:
                self._counters["delays_injected"] += 1
        return EvalFault(ordinal=n, raise_now=raise_now, delay_s=delay_s)

    def fleet_batch(self) -> BatchFault:
        """Advance the fleet-batch ordinal; report what fires now."""
        with self._lock:
            self._fleet_batches += 1
            n = self._fleet_batches
            kill = n in self.plan.kill_batches
            if kill:
                self._counters["kills_injected"] += 1
        return BatchFault(ordinal=n, kill=kill)

    def drop_request(self) -> bool:
        """Advance the request ordinal; whether to drop the connection."""
        with self._lock:
            self._requests += 1
            drop = self._requests in self.plan.drop_requests
            if drop:
                self._counters["drops_injected"] += 1
        return drop

    # -- introspection --------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``"faults"`` section of ``GET /v1/stats``."""
        with self._lock:
            counters = dict(self._counters)
            ordinals = {
                "eval_calls": self._eval_calls,
                "fleet_batches": self._fleet_batches,
                "requests": self._requests,
            }
        return {
            "plan": self.plan.describe(),
            "counters": counters,
            "ordinals": ordinals,
        }


def wrap_evaluate(
    evaluate: Callable[..., Any], injector: FaultInjector
) -> Callable[..., Any]:
    """Apply an injector's raise/delay schedule to an evaluate callable.

    Used for the in-process evaluation path (the fleet applies the
    schedule itself, so it also covers kills).  The wrapper is
    deliberately opaque -- no ``__self__`` -- so the scheduler's
    evaluator-stats discovery stays untouched.
    """
    import time

    def faulty_evaluate(points):
        fault = injector.eval_call()
        if fault.delay_s > 0:
            time.sleep(fault.delay_s)
        if fault.raise_now:
            raise InjectedFault(
                f"injected evaluation failure "
                f"(eval call {fault.ordinal})"
            )
        return evaluate(points)

    return faulty_evaluate
