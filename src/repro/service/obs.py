"""End-to-end observability for the evaluation daemon.

One :class:`Observability` instance per daemon carries everything the
serving stack (PRs 5-9) was missing a window into:

* **Request tracing.**  Every ``POST /v1/evaluate`` gets a trace ID --
  accepted from the ``X-Repro-Trace-Id`` request header or generated
  -- returned in the response (header + JSON ``trace_id``) and
  propagated into batch and fleet-bucket execution.  Each request
  accumulates a monotonic-clock span timeline (parse, admission, cache
  lookup, queue wait, batch execute, per-worker buckets, respond);
  completed traces live in a bounded ring buffer served by
  ``GET /v1/trace[/<id>]``, so "where did this slow request spend its
  time?" has an answer after the fact.
* **Prometheus-text metrics.**  ``GET /metrics`` renders the existing
  ``/v1/stats`` counters plus four native histograms (request latency,
  batch size, rows per bucket, queue depth at batch cut) in text
  exposition format 0.0.4 -- stdlib only, with correct label escaping.
* **Structured JSON logging** (``repro serve --log-json``): one JSON
  object per line on stderr, trace IDs attached, plus a dedicated
  slow-request event above a configurable threshold.
* **Live trace recording** (``repro serve --record-trace FILE``):
  every arrival is journalled as a :mod:`repro.loadgen` trace event
  (JSONL), so production traffic replays byte-for-byte through
  ``repro loadtest --trace``.

Every hook is **guarded and allocation-light**: with observability off
the daemon constructs no trace objects, takes no extra locks, and
evaluates bit-identically to PR 9 -- ``benchmarks/bench_obs.py``
asserts the on-vs-off throughput overhead stays within 5 %.  The
spans never touch result records, so bit-identity of service output
to solo CLI runs is untouched by construction.

Cross-thread propagation: the scheduler evaluates batches on a thread
pool, and ``contextvars`` do not cross ``run_in_executor``.  The fleet
therefore reports bucket spans through a *thread-local sink*
(:func:`run_with_sink` / :func:`current_sink`) that the scheduler
arms inside the executor thread around each batch evaluation -- the
same thread the fleet's ``evaluate`` runs on.
"""

from __future__ import annotations

import bisect
import itertools
import json
import re
import sys
import threading
import time
import uuid
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Request/response header carrying the trace ID (lower-cased on read;
#: the server lower-cases incoming header names).
TRACE_HEADER = "x-repro-trace-id"

#: Completed traces kept for ``GET /v1/trace`` (ring buffer size).
DEFAULT_TRACE_BUFFER = 256

#: Trace IDs are capped so a hostile header cannot balloon the ring.
MAX_TRACE_ID_LEN = 128

#: Explicit histogram bucket bounds (upper edges, ``+Inf`` implied).
LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)
BATCH_POINTS_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)
BUCKET_ROWS_BUCKETS = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000,
)
QUEUE_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 512)


#: Generated trace IDs are a per-process random prefix plus a counter:
#: 32 hex chars like a UUID, but ~4x cheaper to mint than ``uuid4()``
#: -- this runs once per request on the event loop.  ``next()`` on a
#: C-level iterator is atomic under the GIL.
_ID_PREFIX = uuid.uuid4().hex[:16]
_ID_COUNTER = itertools.count(int(uuid.uuid4().hex[:8], 16))


def new_trace_id() -> str:
    """A fresh trace ID (32 hex chars, unique across daemon restarts)."""
    return f"{_ID_PREFIX}{next(_ID_COUNTER):016x}"


def clean_trace_id(raw: Optional[str]) -> Optional[str]:
    """Validate a client-supplied trace ID; ``None`` when unusable."""
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > MAX_TRACE_ID_LEN:
        return None
    if not re.fullmatch(r"[A-Za-z0-9._:-]+", raw):
        return None
    return raw


class Span:
    """One timed operation inside a request: ``[t0, t1)`` + metadata.

    Times are ``time.perf_counter()`` seconds; :meth:`to_dict`
    re-bases them onto the owning trace's start so the timeline reads
    as offsets.
    """

    __slots__ = ("name", "t0", "t1", "meta")

    def __init__(
        self,
        name: str,
        t0: float,
        t1: float,
        meta: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.meta = meta

    def to_dict(self, base: float) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "start_ms": round(1e3 * (self.t0 - base), 4),
            "duration_ms": round(1e3 * (self.t1 - self.t0), 4),
        }
        if self.meta:
            doc.update(self.meta)
        return doc


class RequestTrace:
    """One traced request: ID, span timeline, final status.

    Spans arrive from two threads (the event loop, and the executor
    thread running the batch), but ``list.append``/``extend`` are
    atomic under CPython's GIL, so the hot path takes no lock --
    readers snapshot the list before iterating.
    """

    __slots__ = (
        "trace_id", "t_start", "wall_start", "t_end",
        "status", "n_points", "spans",
    )

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.t_start = time.perf_counter()
        self.wall_start = time.time()
        self.t_end: Optional[float] = None
        self.status: Optional[int] = None
        self.n_points = 0
        self.spans: List[Span] = []

    def span(
        self,
        name: str,
        t0: float,
        t1: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one completed span (GIL-atomic append)."""
        self.spans.append(Span(name, t0, t1, meta))

    def add_spans(self, spans: Iterable[Span]) -> None:
        self.spans.extend(spans)

    @property
    def duration_s(self) -> float:
        end = self.t_end if self.t_end is not None else time.perf_counter()
        return end - self.t_start

    def to_dict(self) -> Dict[str, Any]:
        spans = sorted(list(self.spans), key=lambda s: s.t0)
        docs = [s.to_dict(self.t_start) for s in spans]
        return {
            "trace_id": self.trace_id,
            "started_at": self.wall_start,
            "duration_ms": round(1e3 * self.duration_s, 4),
            "status": self.status,
            "n_points": self.n_points,
            "spans": docs,
        }

    def summary(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "started_at": self.wall_start,
            "duration_ms": round(1e3 * self.duration_s, 4),
            "status": self.status,
            "n_points": self.n_points,
            "n_spans": len(self.spans),
        }


class TraceBuffer:
    """A bounded ring of completed traces, addressable by ID."""

    def __init__(self, maxlen: int = DEFAULT_TRACE_BUFFER):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._ring: "deque[RequestTrace]" = deque(maxlen=maxlen)
        self._by_id: Dict[str, RequestTrace] = {}
        self._lock = threading.Lock()

    def push(self, trace: RequestTrace) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                evicted = self._ring[0]
                # Only drop the index entry if it still points at the
                # evictee (a reused trace ID may have overwritten it).
                if self._by_id.get(evicted.trace_id) is evicted:
                    del self._by_id[evicted.trace_id]
            self._ring.append(trace)
            self._by_id[trace.trace_id] = trace

    def get(self, trace_id: str) -> Optional[RequestTrace]:
        with self._lock:
            return self._by_id.get(trace_id)

    def recent(self, limit: int = 50) -> List[RequestTrace]:
        """Newest-first slice of the ring."""
        with self._lock:
            items = list(self._ring)
        return list(reversed(items))[: max(0, limit)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class Histogram:
    """A Prometheus-style histogram with explicit bucket bounds.

    ``observe`` is lock-protected: the fleet observes bucket rows from
    scheduler executor threads while the event loop observes batch
    sizes.  Bucket counts are *non-cumulative* internally; the
    renderer emits the cumulative form the exposition format requires.
    """

    def __init__(self, name: str, help_text: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram bounds must be non-empty ascending, "
                f"got {bounds!r}"
            )
        self.name = name
        self.help = help_text
        self.bounds = [float(b) for b in bounds]
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        i = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """``(cumulative_counts, sum, count)``; counts include +Inf."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total = self._sum, self._count
        cumulative: List[int] = []
        acc = 0
        for c in counts:
            acc += c
            cumulative.append(acc)
        return cumulative, total_sum, total


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote and newline."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    name = "_".join(_NAME_RE.sub("_", p) for p in parts if p)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _MetricsWriter:
    """Accumulates exposition-format lines with HELP/TYPE headers."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._seen: set = set()

    def header(self, name: str, kind: str, help_text: str) -> None:
        if name in self._seen:
            return
        self._seen.add(name)
        safe_help = help_text.replace("\\", "\\\\").replace("\n", "\\n")
        self.lines.append(f"# HELP {name} {safe_help}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if labels:
            body = ",".join(
                f'{k}="{escape_label_value(str(v))}"'
                for k, v in labels.items()
            )
            self.lines.append(
                f"{name}{{{body}}} {_format_value(value)}"
            )
        else:
            self.lines.append(f"{name} {_format_value(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


#: Stats counter names rendered as Prometheus counters (monotone);
#: everything else numeric becomes a gauge.
_COUNTER_SECTIONS = ("counters",)


def _walk_stats(
    writer: _MetricsWriter,
    prefix: Tuple[str, ...],
    node: Any,
    *,
    in_counters: bool = False,
) -> None:
    """Flatten a stats payload into prefixed gauges/counters."""
    if isinstance(node, Mapping):
        for key, value in node.items():
            _walk_stats(
                writer,
                prefix + (str(key),),
                value,
                in_counters=in_counters or str(key) in _COUNTER_SECTIONS,
            )
        return
    if isinstance(node, bool):
        node = 1 if node else 0
    if isinstance(node, (int, float)):
        name = _metric_name("repro", *prefix)
        if in_counters:
            if not name.endswith("_total"):
                name += "_total"
            writer.header(name, "counter", f"repro stat {'.'.join(prefix)}")
        else:
            writer.header(name, "gauge", f"repro stat {'.'.join(prefix)}")
        writer.sample(name, float(node))
    # non-numeric leaves (strings, None, lists) are not metrics


def render_prometheus(
    stats: Mapping[str, Any],
    histograms: Sequence[Histogram],
) -> str:
    """Render ``/v1/stats`` + histograms as text exposition 0.0.4.

    Per-client admission counters become labelled samples
    (``repro_admission_client_*{client="..."}``) instead of one metric
    per client name, exercising label escaping on arbitrary client
    identities.
    """
    writer = _MetricsWriter()
    writer.header("repro_up", "gauge", "daemon liveness (always 1)")
    writer.sample("repro_up", 1)

    flat = dict(stats)
    admission = flat.get("admission")
    clients = None
    if isinstance(admission, Mapping) and "clients" in admission:
        flat["admission"] = {
            k: v for k, v in admission.items() if k != "clients"
        }
        clients = admission["clients"]
    _walk_stats(writer, (), flat)
    if isinstance(clients, Mapping):
        for counter in (
            "admitted", "rejected_429", "shed_503", "rows_admitted"
        ):
            name = f"repro_admission_client_{counter}_total"
            writer.header(
                name, "counter",
                f"per-client admission counter {counter}",
            )
            for client, counters in clients.items():
                if isinstance(counters, Mapping) and counter in counters:
                    writer.sample(
                        name,
                        float(counters[counter]),
                        {"client": str(client)},
                    )

    for hist in histograms:
        writer.header(hist.name, "histogram", hist.help)
        cumulative, total_sum, count = hist.snapshot()
        for bound, acc in zip(hist.bounds, cumulative[:-1]):
            writer.sample(
                f"{hist.name}_bucket", acc, {"le": _format_value(bound)}
            )
        writer.sample(
            f"{hist.name}_bucket", cumulative[-1], {"le": "+Inf"}
        )
        writer.sample(f"{hist.name}_sum", total_sum)
        writer.sample(f"{hist.name}_count", count)
    return writer.render()


class StructuredLogger:
    """Opt-in JSON-lines logging (``repro serve --log-json``)."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def event(self, event: str, **fields: Any) -> None:
        doc = {"ts": round(time.time(), 6), "event": event}
        doc.update(fields)
        line = json.dumps(doc, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


class ArrivalRecorder:
    """Journal live arrivals as a replayable ``repro.loadgen`` trace.

    Each admitted ``/v1/evaluate`` point becomes one JSONL line in
    :class:`~repro.loadgen.traces.TraceEvent` schema -- ``t`` is the
    monotonic offset from the first recorded arrival, ``point`` the
    fully-resolved protocol dict -- so ``repro loadtest --trace FILE``
    re-issues the captured traffic byte-for-byte.  Lines are flushed
    per arrival: a crashed daemon loses nothing already recorded.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w")
        self._t0: Optional[float] = None
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, points: Sequence[Any], now: float) -> None:
        """Record one request's points at monotonic time ``now``."""
        with self._lock:
            if self._fh is None:
                return
            if self._t0 is None:
                self._t0 = now
            t = now - self._t0
            for point in points:
                desc = point.to_dict() if hasattr(point, "to_dict") else (
                    dict(point)
                )
                if (
                    desc.get("mode", "simulate") == "simulate"
                    and desc.get("engine") == "analytic"
                ):
                    request_class = "analytic"
                else:
                    request_class = str(desc.get("mode", "simulate"))
                line = json.dumps(
                    {"t": round(t, 6), "class": request_class,
                     "point": desc}
                )
                self._fh.write(line + "\n")
                self.recorded += 1
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# -- cross-thread bucket-span sink -------------------------------------------
class BatchSink:
    """Collects fleet bucket spans for one batch evaluation."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def add(
        self,
        name: str,
        t0: float,
        t1: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.spans.append(Span(name, t0, t1, meta))


_sink_local = threading.local()


def current_sink() -> Optional[BatchSink]:
    """The executor thread's active batch sink, if any."""
    return getattr(_sink_local, "sink", None)


def run_with_sink(
    sink: Optional[BatchSink],
    fn: Callable[..., Any],
    *args: Any,
) -> Any:
    """Run ``fn(*args)`` with ``sink`` armed as this thread's sink.

    The scheduler wraps batch evaluation in this so the fleet, called
    on the same executor thread, can deposit per-bucket spans without
    any plumbing through the evaluate signature.
    """
    _sink_local.sink = sink
    try:
        return fn(*args)
    finally:
        _sink_local.sink = None


class Observability:
    """The daemon's observability hub; absent (``None``) when off.

    Owns the trace ring, the four native histograms, the shared stats
    snapshot lock, and the optional structured logger and arrival
    recorder.  Everything here is thread-safe.
    """

    def __init__(
        self,
        *,
        trace_buffer: int = DEFAULT_TRACE_BUFFER,
        log_json: bool = False,
        log_stream: Optional[IO[str]] = None,
        slow_request_s: Optional[float] = None,
        record_trace_path: Optional[str] = None,
    ):
        self.traces = TraceBuffer(trace_buffer)
        #: One lock for cross-subsystem counter consistency: the fleet
        #: updates its batch counters under it and ``/v1/stats`` +
        #: ``/metrics`` assemble their snapshots under it, so a reader
        #: never sees one subsystem mid-update relative to another.
        #: Re-entrant because the snapshot assembly holds it while the
        #: fleet's own ``stats()`` re-acquires it underneath.
        self.stats_lock = threading.RLock()
        #: Per-request events need ``--log-json``; a slow-request
        #: threshold alone still gets its own logger so outliers are
        #: reported without the full request firehose.
        self._log_all = bool(log_json)
        self.log: Optional[StructuredLogger] = (
            StructuredLogger(log_stream)
            if log_json or slow_request_s is not None
            else None
        )
        self.slow_request_s = slow_request_s
        self.recorder: Optional[ArrivalRecorder] = (
            ArrivalRecorder(record_trace_path)
            if record_trace_path
            else None
        )
        self.h_request_latency = Histogram(
            "repro_request_latency_seconds",
            "wall latency of /v1/evaluate requests, server-side",
            LATENCY_BUCKETS_S,
        )
        self.h_batch_points = Histogram(
            "repro_batch_points",
            "points per dispatched micro-batch",
            BATCH_POINTS_BUCKETS,
        )
        self.h_bucket_rows = Histogram(
            "repro_bucket_rows",
            "Monte-Carlo rows per fleet bucket",
            BUCKET_ROWS_BUCKETS,
        )
        self.h_queue_depth = Histogram(
            "repro_queue_depth",
            "scheduler queue depth at each batch cut",
            QUEUE_DEPTH_BUCKETS,
        )
        self.histograms = (
            self.h_request_latency,
            self.h_batch_points,
            self.h_bucket_rows,
            self.h_queue_depth,
        )

    # -- request lifecycle ---------------------------------------------------
    def begin_trace(self, header_value: Optional[str]) -> RequestTrace:
        """Open a trace for one request; honours a client-supplied ID."""
        trace_id = clean_trace_id(header_value) or new_trace_id()
        return RequestTrace(trace_id)

    def finish_trace(
        self, trace: RequestTrace, status: int, *, path: str = "/v1/evaluate"
    ) -> None:
        """Close a trace: ring-buffer it, observe latency, maybe log."""
        trace.t_end = time.perf_counter()
        trace.status = status
        self.traces.push(trace)
        duration = trace.t_end - trace.t_start
        self.h_request_latency.observe(duration)
        if (
            self.slow_request_s is not None
            and duration >= self.slow_request_s
            and self.log is not None
        ):
            self.log.event(
                "slow_request",
                trace_id=trace.trace_id,
                path=path,
                status=status,
                duration_ms=round(1e3 * duration, 3),
                threshold_ms=round(1e3 * self.slow_request_s, 3),
                n_points=trace.n_points,
            )
        elif self._log_all and self.log is not None:
            self.log.event(
                "request",
                trace_id=trace.trace_id,
                path=path,
                status=status,
                duration_ms=round(1e3 * duration, 3),
                n_points=trace.n_points,
            )

    def event(self, name: str, **fields: Any) -> None:
        """Emit a structured log event (no-op unless ``--log-json``)."""
        if self._log_all and self.log is not None:
            self.log.event(name, **fields)

    def render_metrics(self, stats: Mapping[str, Any]) -> str:
        """The ``GET /metrics`` body."""
        return render_prometheus(stats, self.histograms)

    def close(self) -> None:
        if self.recorder is not None:
            self.recorder.close()
