"""``python -m repro`` entry point (same CLI as the installed script)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
