"""repro -- optimal resilience patterns for fail-stop and silent errors.

A complete reproduction of Benoit, Cavelan, Robert & Sun, *Optimal
resilience patterns to cope with fail-stop and silent errors* (RR-8786 /
IPDPS 2016): the analytical pattern model, Table-1 closed-form optima, an
exact (non-approximated) evaluator, a Monte-Carlo simulator reproducing
the paper's evaluation (Figures 6-9), and a live resilient executor that
runs real NumPy workloads under pattern schedules with injected faults.

Quickstart
----------
>>> from repro import hera, PatternKind, optimal_pattern
>>> opt = optimal_pattern(PatternKind.PDMV, hera())
>>> opt.H_star < optimal_pattern(PatternKind.PD, hera()).H_star
True
"""

from repro._version import __version__
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    ScenarioPoint,
    run_campaign,
)
from repro.core import (
    OptimalPattern,
    Pattern,
    PatternKind,
    build_pattern,
    decompose_overhead,
    exact_expected_time,
    exact_overhead,
    numeric_optimal_pattern,
    optimal_pattern,
    optimize_all_patterns,
)
from repro.errors import (
    ErrorEvent,
    ErrorKind,
    PoissonErrorProcess,
    TwoErrorProcess,
)
from repro.platforms import (
    Platform,
    ResilienceCosts,
    atlas,
    coastal,
    coastal_ssd,
    get_platform,
    hera,
    weak_scaling_platform,
)
from repro.simulation import (
    MonteCarloResult,
    PatternSimulator,
    SimulationStats,
    simulate_pattern_overhead,
)

__all__ = [
    "__version__",
    # campaign
    "CampaignSpec",
    "ScenarioPoint",
    "ResultCache",
    "run_campaign",
    # core
    "Pattern",
    "PatternKind",
    "OptimalPattern",
    "build_pattern",
    "optimal_pattern",
    "optimize_all_patterns",
    "decompose_overhead",
    "exact_expected_time",
    "exact_overhead",
    "numeric_optimal_pattern",
    # errors
    "ErrorKind",
    "ErrorEvent",
    "PoissonErrorProcess",
    "TwoErrorProcess",
    # platforms
    "Platform",
    "ResilienceCosts",
    "hera",
    "atlas",
    "coastal",
    "coastal_ssd",
    "get_platform",
    "weak_scaling_platform",
    # simulation
    "PatternSimulator",
    "SimulationStats",
    "MonteCarloResult",
    "simulate_pattern_overhead",
]
