"""Experiment harness: one module per paper table/figure.

Every module exposes ``run_*`` functions returning structured rows (lists
of dicts) plus a ``render_*`` helper producing the ASCII table printed by
the CLI.  Default Monte-Carlo sizes are laptop-friendly; pass
``n_patterns=1000, n_runs=1000`` for paper-scale campaigns.
"""

from repro.experiments.report import format_table, fmt
from repro.experiments.io import read_jsonl, write_csv, write_json, write_jsonl
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.fig6 import run_fig6, render_fig6
from repro.experiments.fig7 import run_weak_scaling, render_weak_scaling
from repro.experiments.fig8 import run_fig8, render_fig8
from repro.experiments.fig9 import (
    run_error_rate_grid,
    run_error_rate_sweep,
    render_error_rate_sweep,
)
from repro.experiments.sensitivity import (
    recall_sweep,
    render_sensitivity,
    verification_cost_sweep,
)

__all__ = [
    "format_table",
    "fmt",
    "write_csv",
    "write_json",
    "write_jsonl",
    "read_jsonl",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_fig6",
    "render_fig6",
    "run_weak_scaling",
    "render_weak_scaling",
    "run_fig8",
    "render_fig8",
    "run_error_rate_grid",
    "run_error_rate_sweep",
    "render_error_rate_sweep",
    "recall_sweep",
    "verification_cost_sweep",
    "render_sensitivity",
]
