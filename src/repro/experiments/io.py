"""Result writers: CSV, JSON and append-friendly JSONL."""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def write_csv(
    rows: Sequence[Dict[str, Any]],
    path: str,
    *,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows of dicts to a CSV file (creating parent directories).

    An empty ``rows`` is allowed when explicit ``columns`` are given: the
    file then contains just the header (useful for campaigns that may
    legitimately produce zero rows for a slice).
    """
    if not rows and columns is None:
        raise ValueError(
            "refusing to write an empty CSV without explicit columns"
        )
    cols = list(columns) if columns is not None else list(rows[0].keys())
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def write_json(data: Any, path: str, *, indent: int = 2) -> None:
    """Write any JSON-serialisable object (creating parent directories)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=indent, sort_keys=False, default=_coerce)
        fh.write("\n")


def write_jsonl(
    records: Iterable[Dict[str, Any]],
    path: str,
    *,
    append: bool = True,
) -> int:
    """Write records one-JSON-object-per-line (creating parent dirs).

    Append mode is the default: JSONL is the campaign journal format, and
    journals grow incrementally across resumed runs.  Every record is
    flushed as it is written so a killed process loses at most the line
    being written.  Returns the number of records written.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "a" if append else "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=False, default=_coerce))
            fh.write("\n")
            fh.flush()
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL file, skipping blank and corrupt lines.

    A truncated final line (the signature of a killed writer) is silently
    dropped rather than aborting the read -- resuming a campaign from a
    journal must tolerate exactly that failure mode.  Use
    :func:`scan_jsonl` to also learn how many lines were dropped.
    """
    records, _ = scan_jsonl(path)
    return records


def scan_jsonl(path: str) -> "Tuple[List[Dict[str, Any]], int]":
    """Read a JSONL file tolerantly, reporting dropped lines.

    Returns ``(records, n_corrupt)``: blank lines are ignored, corrupt or
    truncated lines (invalid JSON -- e.g. the half-written last line of a
    killed process) are *counted* and skipped.  Campaign resume surfaces
    the count so an interrupted run is visible rather than silent.
    """
    records: List[Dict[str, Any]] = []
    n_corrupt = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                n_corrupt += 1
    return records, n_corrupt


def _coerce(obj: Any) -> Any:
    """Fallback encoder for NumPy scalars and similar."""
    if hasattr(obj, "tolist"):  # NumPy arrays and scalars
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)
