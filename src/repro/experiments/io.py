"""Result writers: CSV and JSON."""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, List, Optional, Sequence


def write_csv(
    rows: Sequence[Dict[str, Any]],
    path: str,
    *,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write rows of dicts to a CSV file (creating parent directories)."""
    if not rows:
        raise ValueError("refusing to write an empty CSV")
    cols = list(columns) if columns is not None else list(rows[0].keys())
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def write_json(data: Any, path: str, *, indent: int = 2) -> None:
    """Write any JSON-serialisable object (creating parent directories)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=indent, sort_keys=False, default=_coerce)
        fh.write("\n")


def _coerce(obj: Any) -> Any:
    """Fallback encoder for NumPy scalars and similar."""
    if hasattr(obj, "tolist"):  # NumPy arrays and scalars
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)
