"""Sensitivity of the optimal patterns to the detector parameters.

The paper fixes the partial verification at ``V = V*/100`` and
``r = 0.8`` (Section 6.1) and notes that the accuracy-to-cost ratio is
what makes partial detectors attractive (Section 2.3).  These sweeps
quantify both knobs at the model level:

* :func:`recall_sweep` -- how ``H*`` and the optimal chunk count respond
  to the detector recall; as ``r -> 0`` the chunking degenerates
  (``m* -> 1``) and ``PDMV`` collapses onto ``PDM``;
* :func:`verification_cost_sweep` -- how ``H*`` responds to the detector
  cost; as ``V -> V*`` the partial detector stops paying for itself and
  ``PDMV`` meets ``PDMV*``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.core.builders import PatternKind
from repro.core.formulas import optimal_pattern
from repro.experiments.report import format_table
from repro.platforms.platform import Platform

#: Default recall grid.
DEFAULT_RECALLS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0)

#: Default cost grid, as fractions of the guaranteed-verification cost.
DEFAULT_COST_FRACTIONS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def recall_sweep(
    platform: Platform,
    recalls: Sequence[float] = DEFAULT_RECALLS,
    *,
    kind: PatternKind = PatternKind.PDMV,
) -> List[Dict[str, Any]]:
    """Sweep the partial-verification recall at fixed cost.

    Returns one row per recall with the optimised shape and overhead,
    plus the corresponding memory-checkpoint-only (``PDM``) and
    guaranteed-verification (``PDMV*``) anchors for context.
    """
    anchor_pdm = optimal_pattern(PatternKind.PDM, platform).H_star
    anchor_star = optimal_pattern(PatternKind.PDMV_STAR, platform).H_star
    rows: List[Dict[str, Any]] = []
    for r in recalls:
        view = platform.with_costs(r=r)
        opt = optimal_pattern(kind, view)
        rows.append(
            {
                "recall": r,
                "m*": opt.m,
                "n*": opt.n,
                "H*": opt.H_star,
                "H*_PDM": anchor_pdm,
                "H*_PDMV_star": anchor_star,
            }
        )
    return rows


def verification_cost_sweep(
    platform: Platform,
    cost_fractions: Sequence[float] = DEFAULT_COST_FRACTIONS,
    *,
    kind: PatternKind = PatternKind.PDMV,
) -> List[Dict[str, Any]]:
    """Sweep the partial-verification cost as a fraction of ``V*``."""
    anchor_star = optimal_pattern(PatternKind.PDMV_STAR, platform).H_star
    rows: List[Dict[str, Any]] = []
    for frac in cost_fractions:
        if frac <= 0:
            raise ValueError(f"cost fraction must be positive, got {frac}")
        view = platform.with_costs(V=frac * platform.V_star)
        opt = optimal_pattern(kind, view)
        rows.append(
            {
                "V_over_Vstar": frac,
                "m*": opt.m,
                "n*": opt.n,
                "H*": opt.H_star,
                "H*_PDMV_star": anchor_star,
            }
        )
    return rows


def render_sensitivity(rows: List[Dict[str, Any]], what: str) -> str:
    """Render one sweep as ASCII."""
    return format_table(rows, title=f"Sensitivity of PDMV to {what}")
