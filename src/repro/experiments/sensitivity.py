"""Sensitivity of the optimal patterns to the detector parameters.

The paper fixes the partial verification at ``V = V*/100`` and
``r = 0.8`` (Section 6.1) and notes that the accuracy-to-cost ratio is
what makes partial detectors attractive (Section 2.3).  These sweeps
quantify both knobs at the model level:

* :func:`recall_sweep` -- how ``H*`` and the optimal chunk count respond
  to the detector recall; as ``r -> 0`` the chunking degenerates
  (``m* -> 1``) and ``PDMV`` collapses onto ``PDM``;
* :func:`verification_cost_sweep` -- how ``H*`` responds to the detector
  cost; as ``V -> V*`` the partial detector stops paying for itself and
  ``PDMV`` meets ``PDMV*``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.builders import PatternKind
from repro.experiments.report import format_table
from repro.platforms.platform import Platform

#: Default recall grid.
DEFAULT_RECALLS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0)

#: Default cost grid, as fractions of the guaranteed-verification cost.
DEFAULT_COST_FRACTIONS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def _sweep_campaign(
    scenario: str,
    platform: Platform,
    params: Dict[str, Any],
    *,
    cache=None,
    journal_path: Optional[str] = None,
):
    """Run one model-level sweep through the campaign engine."""
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec, platform_to_dict

    spec = CampaignSpec(
        name=scenario,
        scenario=scenario,
        params={"platform": platform_to_dict(platform), **params},
    )
    return run_campaign(
        spec, cache=cache, journal_path=journal_path, n_workers=1
    )


def recall_sweep(
    platform: Platform,
    recalls: Sequence[float] = DEFAULT_RECALLS,
    *,
    kind: PatternKind = PatternKind.PDMV,
    cache=None,
    journal_path: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Sweep the partial-verification recall at fixed cost.

    Returns one row per recall with the optimised shape and overhead,
    plus the corresponding memory-checkpoint-only (``PDM``) and
    guaranteed-verification (``PDMV*``) anchors for context.  Runs as a
    ``recall_sweep`` campaign (``optimize``-mode points), so results are
    shareable through the campaign cache.
    """
    result = _sweep_campaign(
        "recall_sweep",
        platform,
        {"recalls": list(recalls), "kind": kind.value},
        cache=cache,
        journal_path=journal_path,
    )
    anchors = {
        rec["role"]: rec["H*"]
        for rec in result.records
        if rec.get("role", "").startswith("anchor")
    }
    return [
        {
            "recall": rec["recall"],
            "m*": rec["m*"],
            "n*": rec["n*"],
            "H*": rec["H*"],
            "H*_PDM": anchors["anchor_pdm"],
            "H*_PDMV_star": anchors["anchor_star"],
        }
        for rec in result.records
        if rec.get("role") == "sweep"
    ]


def verification_cost_sweep(
    platform: Platform,
    cost_fractions: Sequence[float] = DEFAULT_COST_FRACTIONS,
    *,
    kind: PatternKind = PatternKind.PDMV,
    cache=None,
    journal_path: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Sweep the partial-verification cost as a fraction of ``V*``."""
    result = _sweep_campaign(
        "verification_cost_sweep",
        platform,
        {"cost_fractions": list(cost_fractions), "kind": kind.value},
        cache=cache,
        journal_path=journal_path,
    )
    anchor_star = next(
        rec["H*"]
        for rec in result.records
        if rec.get("role") == "anchor_star"
    )
    return [
        {
            "V_over_Vstar": rec["V_over_Vstar"],
            "m*": rec["m*"],
            "n*": rec["n*"],
            "H*": rec["H*"],
            "H*_PDMV_star": anchor_star,
        }
        for rec in result.records
        if rec.get("role") == "sweep"
    ]


def render_sensitivity(rows: List[Dict[str, Any]], what: str) -> str:
    """Render one sweep as ASCII."""
    return format_table(rows, title=f"Sensitivity of PDMV to {what}")
