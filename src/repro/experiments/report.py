"""ASCII table rendering for experiment results."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence


def fmt(value: Any, precision: int = 4) -> str:
    """Format one cell: floats to fixed precision, ints plain, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 10 ** (-precision)):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    *,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render rows of dicts as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        The data; missing keys render as '-'.
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Float precision.
    title:
        Optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[fmt(row.get(c), precision) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(cols)
    ]
    sep = "  "
    header = sep.join(c.ljust(w) for c, w in zip(cols, widths))
    rule = sep.join("-" * w for w in widths)
    body = "\n".join(
        sep.join(v.rjust(w) if _num_like(v) else v.ljust(w) for v, w in zip(line, widths))
        for line in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def _num_like(s: str) -> bool:
    """True when a rendered cell looks numeric (right-align it)."""
    try:
        float(s)
        return True
    except ValueError:
        return s in ("inf", "-inf", "nan", "-")
