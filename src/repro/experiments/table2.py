"""Table 2: the platform parameter catalog.

Renders the four platforms with their error rates, derived MTBFs (the
paper quotes 12.2 days fail-stop / 3.4 days silent for Hera) and
checkpoint costs.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.report import format_table
from repro.platforms.catalog import PLATFORMS


def run_table2() -> List[Dict[str, Any]]:
    """One row per catalog platform with rates, costs and derived MTBFs."""
    rows: List[Dict[str, Any]] = []
    for factory in PLATFORMS.values():
        p = factory()
        rows.append(
            {
                "platform": p.name,
                "nodes": p.nodes,
                "lambda_f": p.lambda_f,
                "lambda_s": p.lambda_s,
                "C_D": p.C_D,
                "C_M": p.C_M,
                "V*": p.V_star,
                "V": p.V,
                "r": p.r,
                "MTBF_f_days": p.mtbf_fail_stop_days,
                "MTBF_s_days": p.mtbf_silent_days,
            }
        )
    return rows


def render_table2() -> str:
    """Render Table 2 as ASCII."""
    return format_table(run_table2(), title="Table 2 -- platform parameters")
