"""Table 2: the platform parameter catalog.

Renders the four platforms with their error rates, derived MTBFs (the
paper quotes 12.2 days fail-stop / 3.4 days silent for Hera) and
checkpoint costs.  With ``engine="analytic"`` each row also carries the
optimal first-order overhead ``H*`` of every pattern family on that
platform, computed in one vectorised batch per family over the whole
catalog (:mod:`repro.core.batch`) -- the catalog summary the analytic
campaigns start from.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.report import format_table
from repro.platforms.catalog import PLATFORMS


def run_table2(*, engine: str = "auto") -> List[Dict[str, Any]]:
    """One row per catalog platform with rates, costs and derived MTBFs.

    ``engine="analytic"`` appends one ``H*_<family>`` column per pattern
    family (the batch-optimised first-order overhead on that platform).
    """
    platforms = [factory() for factory in PLATFORMS.values()]
    rows: List[Dict[str, Any]] = []
    for p in platforms:
        rows.append(
            {
                "platform": p.name,
                "nodes": p.nodes,
                "lambda_f": p.lambda_f,
                "lambda_s": p.lambda_s,
                "C_D": p.C_D,
                "C_M": p.C_M,
                "V*": p.V_star,
                "V": p.V,
                "r": p.r,
                "MTBF_f_days": p.mtbf_fail_stop_days,
                "MTBF_s_days": p.mtbf_silent_days,
            }
        )
    if engine == "analytic":
        from repro.core.batch import PlatformGrid, batch_optimal_patterns
        from repro.core.builders import PATTERN_ORDER

        grid = PlatformGrid.from_platforms(platforms)
        for kind in PATTERN_ORDER:
            opt = batch_optimal_patterns(kind, grid, refine_period=False)
            for i, row in enumerate(rows):
                row[f"H*_{kind.value}"] = float(opt.H_star[i])
    return rows


def render_table2(*, engine: str = "auto") -> str:
    """Render Table 2 as ASCII."""
    return format_table(
        run_table2(engine=engine), title="Table 2 -- platform parameters"
    )
