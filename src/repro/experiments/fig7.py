"""Figures 7 and 8: weak scaling on the Hera-derived platform.

The node count sweeps powers of two; per-node MTBFs stay fixed (Hera's
8.57 / 2.4 years), so platform rates grow linearly.  Figure 7 uses
``C_D = 300``; Figure 8 reduces it to ``C_D = 90``.  Panels covered:

* a -- predicted vs simulated overhead for ``PD`` and ``PDMV``;
* b -- period in hours;
* c -- disk/memory recoveries per pattern (``PDMV``);
* d -- ckpts/verifs per hour (``PDMV``);
* e -- disk/memory ckpts per hour (both patterns);
* f -- recoveries per day (``PDMV``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.builders import PatternKind
from repro.core.formulas import optimal_pattern
from repro.errors.rng import SeedLike
from repro.experiments.report import format_table
from repro.platforms.scaling import weak_scaling_platform
from repro.simulation.runner import simulate_optimal_pattern

#: Node counts of the paper's sweep (2^8 .. 2^18).
PAPER_NODE_COUNTS = tuple(2**k for k in range(8, 19))

#: Reduced default sweep keeping CI runtimes sane (2^8 .. 2^16).
DEFAULT_NODE_COUNTS = tuple(2**k for k in range(8, 17, 2))


def _run_weak_scaling_analytic(
    counts: Sequence[int],
    *,
    C_D: float,
    C_M: float,
    kinds: Iterable[PatternKind],
) -> List[Dict[str, Any]]:
    """The analytic-tier weak-scaling rows: one batch call per family.

    The whole node sweep becomes a single
    :class:`~repro.core.batch.PlatformGrid`, so the optimiser-in-the-loop
    evaluation (shape refinement, first-order and exact overheads per
    node count) is a handful of vectorised passes instead of per-cell
    scipy runs.  ``simulated`` is the exact-model overhead; the 7a
    divergence panel is ``simulated - predicted`` exactly as on the
    Monte-Carlo path.
    """
    from repro.core.batch import PlatformGrid, analytic_records

    plats = [
        weak_scaling_platform(int(nodes), C_D=C_D, C_M=C_M)
        for nodes in counts
    ]
    grid = PlatformGrid.from_platforms(plats)
    per_kind = {kind: analytic_records(kind, grid) for kind in kinds}
    rows: List[Dict[str, Any]] = []
    for i, nodes in enumerate(counts):
        for kind in kinds:
            rec = per_kind[kind][i]
            rows.append(
                {
                    "nodes": int(nodes),
                    "pattern": kind.value,
                    "predicted": rec["predicted"],
                    "simulated": rec["simulated"],
                    "W*_hours": rec["W*_hours"],
                    "n*": rec["n*"],
                    "m*": rec["m*"],
                    "divergence": rec["divergence"],
                    "H_numeric": rec["H_numeric"],
                    "engine": "analytic",
                }
            )
    return rows


def run_weak_scaling(
    node_counts: Optional[Sequence[int]] = None,
    *,
    C_D: float = 300.0,
    C_M: float = 15.4,
    kinds: Iterable[PatternKind] = (PatternKind.PD, PatternKind.PDMV),
    n_patterns: int = 50,
    n_runs: int = 20,
    seed: SeedLike = 20160607,
    engine: str = "auto",
) -> List[Dict[str, Any]]:
    """Run the weak-scaling campaign (Figure 7 with defaults; Figure 8
    with ``C_D=90``); one row per (node count, pattern).  ``engine``
    selects the simulation tier (see :mod:`repro.simulation.dispatch`);
    ``"analytic"`` replaces the Monte-Carlo with the vectorised exact
    model (no sampled operation-frequency columns, adds the
    first-order-vs-exact ``divergence``)."""
    counts = tuple(node_counts) if node_counts is not None else DEFAULT_NODE_COUNTS
    if engine == "analytic":
        return _run_weak_scaling_analytic(
            counts, C_D=C_D, C_M=C_M, kinds=tuple(kinds)
        )
    rows: List[Dict[str, Any]] = []
    for nodes in counts:
        plat = weak_scaling_platform(nodes, C_D=C_D, C_M=C_M)
        for kind in kinds:
            opt = optimal_pattern(kind, plat)
            res = simulate_optimal_pattern(
                kind,
                plat,
                n_patterns=n_patterns,
                n_runs=n_runs,
                seed=seed,
                engine=engine,
            )
            agg = res.aggregated
            rows.append(
                {
                    "nodes": nodes,
                    "pattern": kind.value,
                    "predicted": opt.H_star,
                    "simulated": agg.mean_overhead,
                    "W*_hours": opt.W_star / 3600.0,
                    "n*": opt.n,
                    "m*": opt.m,
                    "disk_ckpts_per_hour": agg.rates_per_hour["disk_checkpoints"],
                    "mem_ckpts_per_hour": agg.rates_per_hour["memory_checkpoints"],
                    "verifs_per_hour": agg.rates_per_hour["verifications"],
                    "disk_rec_per_pattern": agg.per_pattern["disk_recoveries"],
                    "mem_rec_per_pattern": agg.per_pattern["memory_recoveries"],
                    "disk_recoveries_per_day": agg.rates_per_day["disk_recoveries"],
                    "mem_recoveries_per_day": agg.rates_per_day["memory_recoveries"],
                }
            )
    return rows


def render_weak_scaling(rows: List[Dict[str, Any]], *, C_D: float = 300.0) -> str:
    """Render the weak-scaling rows as ASCII."""
    return format_table(
        rows,
        title=f"Weak scaling on Hera-derived platform (C_D = {C_D:g}s)",
    )
