"""Figure 9: impact of the error rates on Hera at 100,000 nodes.

The nominal platform is Hera weak-scaled to ``10^5`` nodes; the sweeps
multiply ``lambda_f`` and ``lambda_s`` by factors in ``[0.2, 2.0]``:

* 9a-c -- simulated-overhead surfaces over the (factor_f, factor_s) grid
  for ``PDMV``, ``PD``, and their difference;
* 9d-g -- ``lambda_f`` sweep at nominal ``lambda_s``: period, verifs and
  ckpts per hour, recoveries per day;
* 9h-k -- ``lambda_s`` sweep at nominal ``lambda_f``: same series.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.builders import PatternKind
from repro.core.formulas import optimal_pattern
from repro.errors.rng import SeedLike
from repro.experiments.report import format_table
from repro.platforms.platform import Platform
from repro.platforms.scaling import weak_scaling_platform

#: Node count of the Figure-9 experiments.
FIG9_NODES = 100_000

#: The paper's factor range.
PAPER_FACTORS = tuple(np.round(np.arange(0.2, 2.01, 0.2), 2).tolist())

#: Reduced default grid for CI runtimes.
DEFAULT_FACTORS = (0.2, 0.6, 1.0, 1.4, 2.0)


def fig9_platform() -> Platform:
    """Hera weak-scaled to 100,000 nodes with nominal costs."""
    return weak_scaling_platform(FIG9_NODES, C_D=300.0, C_M=15.4)


def _simulate(
    kind: PatternKind,
    plat: Platform,
    n_patterns: int,
    n_runs: int,
    seed: SeedLike,
    engine: str = "auto",
):
    from repro.simulation.runner import simulate_optimal_pattern

    return simulate_optimal_pattern(
        kind, plat, n_patterns=n_patterns, n_runs=n_runs, seed=seed,
        engine=engine,
    )


def run_error_rate_grid(
    factors: Optional[Sequence[float]] = None,
    *,
    kinds: Iterable[PatternKind] = (PatternKind.PDMV, PatternKind.PD),
    n_patterns: int = 20,
    n_runs: int = 10,
    seed: SeedLike = 20160609,
) -> List[Dict[str, Any]]:
    """The 9a-c overhead surfaces: one row per (factor_f, factor_s).

    Each row carries the simulated overhead of every requested pattern
    plus the difference (first minus second when two kinds are given --
    matching the paper's ``PD - PDMV`` "savings" panel when called with
    the default order ``(PDMV, PD)`` the difference is ``PD - PDMV``).
    """
    fs = tuple(factors) if factors is not None else DEFAULT_FACTORS
    base = fig9_platform()
    kinds = tuple(kinds)
    rows: List[Dict[str, Any]] = []
    for ff in fs:
        for fsil in fs:
            plat = base.scaled_rates(factor_f=ff, factor_s=fsil)
            row: Dict[str, Any] = {"factor_f": ff, "factor_s": fsil}
            sims: List[float] = []
            for kind in kinds:
                res = _simulate(kind, plat, n_patterns, n_runs, seed)
                row[f"simulated_{kind.value}"] = res.simulated_overhead
                sims.append(res.simulated_overhead)
            if len(sims) == 2:
                row["difference"] = sims[1] - sims[0]
            rows.append(row)
    return rows


def run_error_rate_sweep(
    vary: str,
    factors: Optional[Sequence[float]] = None,
    *,
    kinds: Iterable[PatternKind] = (PatternKind.PDMV, PatternKind.PD),
    n_patterns: int = 20,
    n_runs: int = 10,
    seed: SeedLike = 20160610,
) -> List[Dict[str, Any]]:
    """The 1-D sweeps (9d-g for ``vary='f'``, 9h-k for ``vary='s'``).

    One row per (factor, pattern) with period, operation frequencies and
    recovery frequencies.
    """
    if vary not in ("f", "s"):
        raise ValueError(f"vary must be 'f' or 's', got {vary!r}")
    fs = tuple(factors) if factors is not None else DEFAULT_FACTORS
    base = fig9_platform()
    rows: List[Dict[str, Any]] = []
    for factor in fs:
        plat = (
            base.scaled_rates(factor_f=factor)
            if vary == "f"
            else base.scaled_rates(factor_s=factor)
        )
        for kind in kinds:
            opt = optimal_pattern(kind, plat)
            res = _simulate(kind, plat, n_patterns, n_runs, seed)
            agg = res.aggregated
            rows.append(
                {
                    "vary": f"lambda_{vary}",
                    "factor": factor,
                    "pattern": kind.value,
                    "predicted": opt.H_star,
                    "simulated": agg.mean_overhead,
                    "W*_minutes": opt.W_star / 60.0,
                    "disk_ckpts_per_hour": agg.rates_per_hour["disk_checkpoints"],
                    "mem_ckpts_per_hour": agg.rates_per_hour["memory_checkpoints"],
                    "verifs_per_hour": agg.rates_per_hour["verifications"],
                    "disk_recoveries_per_day": agg.rates_per_day["disk_recoveries"],
                    "mem_recoveries_per_day": agg.rates_per_day["memory_recoveries"],
                }
            )
    return rows


def render_error_rate_sweep(rows: List[Dict[str, Any]]) -> str:
    """Render a 1-D error-rate sweep as ASCII."""
    vary = rows[0]["vary"] if rows else "?"
    return format_table(
        rows,
        title=f"Figure 9 -- {vary} sweep on Hera x 100,000 nodes",
    )
