"""Figure 8: weak scaling with reduced disk-checkpoint cost.

Identical to Figure 7 (:mod:`repro.experiments.fig7`) with ``C_D = 90``
seconds instead of 300 -- cheaper disk checkpoints shorten the optimal
period, raise the checkpointing frequency, and roughly halve the
extreme-scale overheads (the paper reports ~200% instead of ~500% at
``2^18`` nodes).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors.rng import SeedLike
from repro.experiments.fig7 import render_weak_scaling, run_weak_scaling

#: The reduced disk checkpoint cost of Figure 8.
FIG8_C_D = 90.0


def run_fig8(
    node_counts: Optional[Sequence[int]] = None,
    *,
    n_patterns: int = 50,
    n_runs: int = 20,
    seed: SeedLike = 20160608,
    engine: str = "auto",
) -> List[Dict[str, Any]]:
    """Run the Figure-8 campaign (weak scaling, ``C_D = 90``)."""
    return run_weak_scaling(
        node_counts,
        C_D=FIG8_C_D,
        n_patterns=n_patterns,
        n_runs=n_runs,
        seed=seed,
        engine=engine,
    )


def render_fig8(rows: List[Dict[str, Any]]) -> str:
    """Render the Figure-8 rows as ASCII."""
    return render_weak_scaling(rows, C_D=FIG8_C_D)
