"""Figure 6: all six patterns on the four Table-2 platforms.

Five panels, all produced from one Monte-Carlo campaign per
(platform, pattern) cell:

* 6a -- predicted vs simulated overhead;
* 6b -- optimal period ``W*`` in hours;
* 6c -- checkpoints + verifications per hour;
* 6d -- disk/memory checkpoints per hour (zoom of 6c);
* 6e -- disk/memory recoveries per day.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.core.builders import PATTERN_ORDER, PatternKind
from repro.core.formulas import optimal_pattern
from repro.errors.rng import SeedLike
from repro.experiments.report import format_table
from repro.platforms.catalog import PLATFORMS
from repro.platforms.platform import Platform
from repro.simulation.runner import simulate_optimal_pattern


def run_fig6(
    platforms: Optional[Iterable[Platform]] = None,
    *,
    kinds: Optional[Iterable[PatternKind]] = None,
    n_patterns: int = 100,
    n_runs: int = 50,
    seed: SeedLike = 20160523,
) -> List[Dict[str, Any]]:
    """Run the Figure-6 campaign; one row per (platform, pattern).

    Row keys cover every panel: ``predicted``/``simulated`` (6a),
    ``W*_hours`` (6b), ``verifs_per_hour``/``*_ckpts_per_hour`` (6c, 6d)
    and ``*_recoveries_per_day`` (6e).
    """
    plats = (
        list(platforms)
        if platforms is not None
        else [factory() for factory in PLATFORMS.values()]
    )
    selected = tuple(kinds) if kinds is not None else PATTERN_ORDER
    rows: List[Dict[str, Any]] = []
    for plat in plats:
        for kind in selected:
            opt = optimal_pattern(kind, plat)
            res = simulate_optimal_pattern(
                kind,
                plat,
                n_patterns=n_patterns,
                n_runs=n_runs,
                seed=seed,
            )
            agg = res.aggregated
            rows.append(
                {
                    "platform": plat.name,
                    "pattern": kind.value,
                    "predicted": opt.H_star,
                    "simulated": agg.mean_overhead,
                    "W*_hours": opt.W_star / 3600.0,
                    "n*": opt.n,
                    "m*": opt.m,
                    "disk_ckpts_per_hour": agg.rates_per_hour["disk_checkpoints"],
                    "mem_ckpts_per_hour": agg.rates_per_hour["memory_checkpoints"],
                    "verifs_per_hour": agg.rates_per_hour["verifications"],
                    "disk_recoveries_per_day": agg.rates_per_day["disk_recoveries"],
                    "mem_recoveries_per_day": agg.rates_per_day["memory_recoveries"],
                }
            )
    return rows


def render_fig6(rows: List[Dict[str, Any]]) -> str:
    """Render the Figure-6 rows as ASCII."""
    return format_table(
        rows,
        title=(
            "Figure 6 -- patterns on real platforms "
            "(overheads, periods, operation frequencies)"
        ),
    )
