"""Figure 6: all six patterns on the four Table-2 platforms.

Five panels, all produced from one Monte-Carlo campaign per
(platform, pattern) cell:

* 6a -- predicted vs simulated overhead;
* 6b -- optimal period ``W*`` in hours;
* 6c -- checkpoints + verifications per hour;
* 6d -- disk/memory checkpoints per hour (zoom of 6c);
* 6e -- disk/memory recoveries per day.

The figure is expressed on the :mod:`repro.campaign` engine (the
``platform_catalog`` scenario): pass ``cache``/``journal_path`` to make
repeated or interrupted regenerations incremental, ``n_workers > 1`` for
chunked process-parallel execution.  Numbers are identical to the legacy
per-cell loop for the same seed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.builders import PatternKind
from repro.experiments.report import format_table
from repro.platforms.platform import Platform

#: The legacy row schema, in presentation order.
FIG6_COLUMNS = (
    "platform",
    "pattern",
    "predicted",
    "simulated",
    "W*_hours",
    "n*",
    "m*",
    "disk_ckpts_per_hour",
    "mem_ckpts_per_hour",
    "verifs_per_hour",
    "disk_recoveries_per_day",
    "mem_recoveries_per_day",
)


def fig6_spec(
    platforms: Optional[Iterable[Union[Platform, str]]] = None,
    *,
    kinds: Optional[Iterable[PatternKind]] = None,
    n_patterns: int = 100,
    n_runs: int = 50,
    seed: int = 20160523,
    engine: str = "auto",
):
    """The Figure-6 campaign spec (``platform_catalog`` scenario)."""
    from repro.campaign.spec import CampaignSpec

    params: Dict[str, Any] = {}
    if platforms is not None:
        params["platforms"] = list(platforms)
    if kinds is not None:
        params["kinds"] = [
            k.value if isinstance(k, PatternKind) else k for k in kinds
        ]
    return CampaignSpec(
        name="fig6",
        scenario="platform_catalog",
        params=params,
        n_patterns=n_patterns,
        n_runs=n_runs,
        seed=seed,
        engine=engine,
    )


def run_fig6(
    platforms: Optional[Iterable[Union[Platform, str]]] = None,
    *,
    kinds: Optional[Iterable[PatternKind]] = None,
    n_patterns: int = 100,
    n_runs: int = 50,
    seed: int = 20160523,
    cache=None,
    journal_path: Optional[str] = None,
    n_workers: int = 1,
    engine: str = "auto",
) -> List[Dict[str, Any]]:
    """Run the Figure-6 campaign; one row per (platform, pattern).

    Row keys cover every panel: ``predicted``/``simulated`` (6a),
    ``W*_hours`` (6b), ``verifs_per_hour``/``*_ckpts_per_hour`` (6c, 6d)
    and ``*_recoveries_per_day`` (6e).  ``engine`` selects the simulation
    tier (see :mod:`repro.simulation.dispatch`).
    """
    from repro.campaign.executor import run_campaign

    result = run_campaign(
        fig6_spec(
            platforms,
            kinds=kinds,
            n_patterns=n_patterns,
            n_runs=n_runs,
            seed=seed,
            engine=engine,
        ),
        cache=cache,
        journal_path=journal_path,
        n_workers=n_workers,
    )
    return [{c: rec[c] for c in FIG6_COLUMNS} for rec in result.records]


def render_fig6(rows: List[Dict[str, Any]]) -> str:
    """Render the Figure-6 rows as ASCII."""
    return format_table(
        rows,
        title=(
            "Figure 6 -- patterns on real platforms "
            "(overheads, periods, operation frequencies)"
        ),
    )
