"""Table 1: optimal parameters and overheads of the six pattern families.

For a given platform, produces one row per family with the closed-form
``W*``, integer ``n*``/``m*``, continuous relaxations, the predicted
overhead ``H*`` and (optionally) the exact-model and numerically optimal
overheads for comparison.

Two evaluation paths produce the same rows: the scalar closed forms
(default) and, with ``engine="analytic"``, the vectorised model layer of
:mod:`repro.core.batch` -- the batch path the surface campaigns run on.
The differential harness pins the two to each other, so the table is
also a cheap end-to-end check of the analytic tier.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.builders import PATTERN_ORDER, PatternKind
from repro.core.exact import exact_overhead
from repro.core.formulas import continuous_overhead, optimal_pattern
from repro.core.optimizer import numeric_optimal_pattern
from repro.experiments.report import format_table
from repro.platforms.platform import Platform


def _run_table1_analytic(
    platform: Platform,
    *,
    include_exact: bool,
    include_numeric: bool,
) -> List[Dict[str, Any]]:
    """The Table-1 rows computed on the vectorised analytic tier."""
    from repro.core.batch import (
        PlatformGrid,
        batch_exact_overhead,
        batch_optimal_patterns,
    )

    grid = PlatformGrid.from_platforms([platform])
    rows: List[Dict[str, Any]] = []
    for kind in PATTERN_ORDER:
        opt = batch_optimal_patterns(
            kind, grid, refine_period=include_numeric
        )
        row: Dict[str, Any] = {
            "pattern": kind.value,
            "W*_hours": float(opt.W_star[0]) / 3600.0,
            "n*": int(opt.n[0]),
            "m*": int(opt.m[0]),
            "n_cont": float(opt.n_cont[0]),
            "m_cont": float(opt.m_cont[0]),
            "H*": float(opt.H_star[0]),
            "H*_continuous": continuous_overhead(kind, platform),
        }
        if include_exact:
            row["H_exact"] = float(
                batch_exact_overhead(kind, grid, opt.W_star, opt.n, opt.m)[0]
            )
        if include_numeric:
            row["W_numeric_hours"] = float(opt.W[0]) / 3600.0
            row["H_numeric"] = float(opt.overhead[0])
        rows.append(row)
    return rows


def run_table1(
    platform: Platform,
    *,
    include_exact: bool = True,
    include_numeric: bool = False,
    engine: str = "auto",
) -> List[Dict[str, Any]]:
    """Compute the Table-1 realisation on one platform.

    Parameters
    ----------
    include_exact:
        Add the exact-model overhead of the closed-form configuration.
    include_numeric:
        Add the numerically optimal period/overhead (slower).
    engine:
        ``"analytic"`` computes the rows on the vectorised batch path
        (:mod:`repro.core.batch`); any other value uses the scalar
        closed forms.  The numbers agree to ``rtol = 1e-12``.
    """
    if engine == "analytic":
        return _run_table1_analytic(
            platform,
            include_exact=include_exact,
            include_numeric=include_numeric,
        )
    rows: List[Dict[str, Any]] = []
    for kind in PATTERN_ORDER:
        opt = optimal_pattern(kind, platform)
        row: Dict[str, Any] = {
            "pattern": kind.value,
            "W*_hours": opt.W_star / 3600.0,
            "n*": opt.n,
            "m*": opt.m,
            "n_cont": opt.n_cont,
            "m_cont": opt.m_cont,
            "H*": opt.H_star,
            "H*_continuous": continuous_overhead(kind, platform),
        }
        if include_exact:
            guaranteed = kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR)
            row["H_exact"] = exact_overhead(
                opt.pattern, platform, guaranteed_intermediate=guaranteed
            )
        if include_numeric:
            num = numeric_optimal_pattern(kind, platform)
            row["W_numeric_hours"] = num.W / 3600.0
            row["H_numeric"] = num.overhead
        rows.append(row)
    return rows


def render_table1(platform: Platform, **kwargs: Any) -> str:
    """Render the Table-1 realisation as ASCII."""
    rows = run_table1(platform, **kwargs)
    return format_table(
        rows, title=f"Table 1 -- optimal patterns on {platform.name}"
    )
