"""Table 1: optimal parameters and overheads of the six pattern families.

For a given platform, produces one row per family with the closed-form
``W*``, integer ``n*``/``m*``, continuous relaxations, the predicted
overhead ``H*`` and (optionally) the exact-model and numerically optimal
overheads for comparison.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.builders import PATTERN_ORDER, PatternKind
from repro.core.exact import exact_overhead
from repro.core.formulas import continuous_overhead, optimal_pattern
from repro.core.optimizer import numeric_optimal_pattern
from repro.experiments.report import format_table
from repro.platforms.platform import Platform


def run_table1(
    platform: Platform,
    *,
    include_exact: bool = True,
    include_numeric: bool = False,
) -> List[Dict[str, Any]]:
    """Compute the Table-1 realisation on one platform.

    Parameters
    ----------
    include_exact:
        Add the exact-model overhead of the closed-form configuration.
    include_numeric:
        Add the numerically optimal period/overhead (slower).
    """
    rows: List[Dict[str, Any]] = []
    for kind in PATTERN_ORDER:
        opt = optimal_pattern(kind, platform)
        row: Dict[str, Any] = {
            "pattern": kind.value,
            "W*_hours": opt.W_star / 3600.0,
            "n*": opt.n,
            "m*": opt.m,
            "n_cont": opt.n_cont,
            "m_cont": opt.m_cont,
            "H*": opt.H_star,
            "H*_continuous": continuous_overhead(kind, platform),
        }
        if include_exact:
            guaranteed = kind in (PatternKind.PDV_STAR, PatternKind.PDMV_STAR)
            row["H_exact"] = exact_overhead(
                opt.pattern, platform, guaranteed_intermediate=guaranteed
            )
        if include_numeric:
            num = numeric_optimal_pattern(kind, platform)
            row["W_numeric_hours"] = num.W / 3600.0
            row["H_numeric"] = num.overhead
        rows.append(row)
    return rows


def render_table1(platform: Platform, **kwargs: Any) -> str:
    """Render the Table-1 realisation as ASCII."""
    rows = run_table1(platform, **kwargs)
    return format_table(
        rows, title=f"Table 1 -- optimal patterns on {platform.name}"
    )
