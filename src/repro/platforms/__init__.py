"""Platform parameter catalog and scaling transforms.

The paper instantiates its model on four real platforms (Table 2) whose
error rates and checkpoint costs were measured by Moody et al. while
evaluating the Scalable Checkpoint/Restart (SCR) library.  This subpackage
provides the :class:`~repro.platforms.platform.Platform` parameter record,
the Table-2 catalog, and the weak-scaling transform used in Section 6.3.
"""

from repro.platforms.platform import Platform, ResilienceCosts
from repro.platforms.catalog import (
    PLATFORMS,
    atlas,
    coastal,
    coastal_ssd,
    get_platform,
    hera,
    platform_names,
)
from repro.platforms.scaling import (
    NodeReliability,
    hera_node_reliability,
    scale_platform,
    weak_scaling_platform,
)

__all__ = [
    "Platform",
    "ResilienceCosts",
    "PLATFORMS",
    "hera",
    "atlas",
    "coastal",
    "coastal_ssd",
    "get_platform",
    "platform_names",
    "NodeReliability",
    "hera_node_reliability",
    "scale_platform",
    "weak_scaling_platform",
]
