"""Platform parameter records.

A :class:`Platform` bundles every scalar the paper's model consumes:

* error rates ``lambda_f`` (fail-stop) and ``lambda_s`` (silent), per second;
* resilience costs: disk checkpoint ``C_D``, memory checkpoint ``C_M``,
  disk recovery ``R_D``, memory recovery ``R_M``, guaranteed verification
  ``V*`` and partial verification ``V`` (seconds);
* the partial-verification recall ``r``.

Default derivations follow the paper's simulation setup (Section 6.1):
``R_D = C_D``, ``R_M = C_M``, ``V* = C_M``, ``V = V*/100``, ``r = 0.8``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ResilienceCosts:
    """The cost vector of the resilience operations, in seconds.

    Attributes
    ----------
    C_D:
        Disk checkpoint cost.
    C_M:
        Memory checkpoint cost.
    R_D:
        Disk recovery cost (reading back the disk checkpoint).
    R_M:
        Memory recovery cost (restoring the in-memory copy).
    V_star:
        Guaranteed-verification cost (detects every silent error).
    V:
        Partial-verification cost.
    r:
        Partial-verification recall, i.e. the fraction of silent errors it
        detects; must lie in ``(0, 1]``.
    """

    C_D: float
    C_M: float
    R_D: float
    R_M: float
    V_star: float
    V: float
    r: float = 0.8

    def __post_init__(self) -> None:
        for name in ("C_D", "C_M", "R_D", "R_M", "V_star", "V"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if not (0.0 < self.r <= 1.0):
            raise ValueError(f"recall r must be in (0, 1], got {self.r}")

    @property
    def accuracy_to_cost_partial(self) -> float:
        """Accuracy-to-cost ratio of the partial verification.

        Defined in Section 2.3 as ``(r / (2 - r)) / (V / (V* + C_M))``; a
        higher ratio makes a detector more attractive.
        """
        return (self.r / (2.0 - self.r)) / (self.V / (self.V_star + self.C_M))

    @property
    def accuracy_to_cost_guaranteed(self) -> float:
        """Accuracy-to-cost ratio of the guaranteed verification.

        The guaranteed verification has recall 1, giving ratio
        ``C_M / V* + 1`` (Section 2.3).
        """
        return self.C_M / self.V_star + 1.0


@dataclass(frozen=True)
class Platform:
    """A complete platform description for the resilience model.

    Attributes
    ----------
    name:
        Human-readable platform name.
    nodes:
        Number of compute nodes (bookkeeping only; the model consumes the
        aggregated rates).
    lambda_f:
        Platform-wide fail-stop error rate (errors/second).
    lambda_s:
        Platform-wide silent error rate (errors/second).
    costs:
        Resilience operation costs.
    """

    name: str
    nodes: int
    lambda_f: float
    lambda_s: float
    costs: ResilienceCosts

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError(f"node count must be positive, got {self.nodes}")
        if self.lambda_f < 0 or self.lambda_s < 0:
            raise ValueError(
                f"error rates must be non-negative, got "
                f"lambda_f={self.lambda_f}, lambda_s={self.lambda_s}"
            )

    # -- convenient cost aliases ------------------------------------------
    @property
    def C_D(self) -> float:
        """Disk checkpoint cost (seconds)."""
        return self.costs.C_D

    @property
    def C_M(self) -> float:
        """Memory checkpoint cost (seconds)."""
        return self.costs.C_M

    @property
    def R_D(self) -> float:
        """Disk recovery cost (seconds)."""
        return self.costs.R_D

    @property
    def R_M(self) -> float:
        """Memory recovery cost (seconds)."""
        return self.costs.R_M

    @property
    def V_star(self) -> float:
        """Guaranteed verification cost (seconds)."""
        return self.costs.V_star

    @property
    def V(self) -> float:
        """Partial verification cost (seconds)."""
        return self.costs.V

    @property
    def r(self) -> float:
        """Partial verification recall."""
        return self.costs.r

    # -- derived reliability quantities ------------------------------------
    @property
    def lambda_total(self) -> float:
        """Combined error rate ``lambda_f + lambda_s``."""
        return self.lambda_f + self.lambda_s

    @property
    def mtbf(self) -> float:
        """Platform MTBF over both error sources, in seconds."""
        lam = self.lambda_total
        return math.inf if lam == 0.0 else 1.0 / lam

    @property
    def mtbf_fail_stop(self) -> float:
        """Platform MTBF for fail-stop errors only, in seconds."""
        return math.inf if self.lambda_f == 0.0 else 1.0 / self.lambda_f

    @property
    def mtbf_silent(self) -> float:
        """Platform MTBF for silent errors only, in seconds."""
        return math.inf if self.lambda_s == 0.0 else 1.0 / self.lambda_s

    @property
    def mtbf_fail_stop_days(self) -> float:
        """Fail-stop MTBF in days (as quoted in the paper's Section 6.2.1)."""
        return self.mtbf_fail_stop / 86400.0

    @property
    def mtbf_silent_days(self) -> float:
        """Silent-error MTBF in days."""
        return self.mtbf_silent / 86400.0

    # -- transformations ----------------------------------------------------
    def with_rates(self, lambda_f: float, lambda_s: float) -> "Platform":
        """Copy of this platform with replaced error rates."""
        return replace(self, lambda_f=lambda_f, lambda_s=lambda_s)

    def scaled_rates(self, factor_f: float = 1.0, factor_s: float = 1.0) -> "Platform":
        """Copy of this platform with error rates multiplied by factors.

        Used by the Figure-9 sweeps, which vary ``lambda_f`` and ``lambda_s``
        relative to their nominal values.
        """
        if factor_f < 0 or factor_s < 0:
            raise ValueError("rate factors must be non-negative")
        return replace(
            self,
            lambda_f=self.lambda_f * factor_f,
            lambda_s=self.lambda_s * factor_s,
        )

    def with_costs(self, **changes: float) -> "Platform":
        """Copy of this platform with some resilience costs replaced.

        Accepts any field of :class:`ResilienceCosts` as keyword argument,
        e.g. ``platform.with_costs(C_D=90.0)`` for the Figure-8 experiment.
        """
        return replace(self, costs=replace(self.costs, **changes))


def default_costs(
    C_D: float,
    C_M: float,
    *,
    R_D: Optional[float] = None,
    R_M: Optional[float] = None,
    V_star: Optional[float] = None,
    V: Optional[float] = None,
    r: float = 0.8,
    partial_cost_ratio: float = 100.0,
) -> ResilienceCosts:
    """Build a cost vector using the paper's default derivations.

    Section 6.1: ``R_D = C_D`` (reading back costs the same as writing),
    ``R_M = C_M``, ``V* = C_M`` (a guaranteed verification touches all of
    memory), and ``V = V*/100`` with recall ``r = 0.8``.
    """
    if partial_cost_ratio <= 0:
        raise ValueError(
            f"partial_cost_ratio must be positive, got {partial_cost_ratio}"
        )
    V_star_val = C_M if V_star is None else V_star
    return ResilienceCosts(
        C_D=C_D,
        C_M=C_M,
        R_D=C_D if R_D is None else R_D,
        R_M=C_M if R_M is None else R_M,
        V_star=V_star_val,
        V=V_star_val / partial_cost_ratio if V is None else V,
        r=r,
    )
