"""Table-2 platform catalog.

The four platforms used in the paper's evaluation (Section 6.2.1,
Table 2).  Error rates and checkpoint costs originate from Moody et al.'s
measurements for the SCR library; the remaining costs follow the paper's
default derivations (``R_D = C_D``, ``R_M = C_M``, ``V* = C_M``,
``V = V*/100``, ``r = 0.8``).

==============  ======  =========  =========  ======  ======
platform        nodes   lambda_f   lambda_s   C_D     C_M
==============  ======  =========  =========  ======  ======
Hera            256     9.46e-7    3.38e-6    300 s   15.4 s
Atlas           512     5.19e-7    7.78e-6    439 s   9.1 s
Coastal         1024    4.02e-7    2.01e-6    1051 s  4.5 s
Coastal SSD     1024    4.02e-7    2.01e-6    2500 s  180 s
==============  ======  =========  =========  ======  ======
"""

from __future__ import annotations

from typing import Dict, List

from repro.platforms.platform import Platform, default_costs


def hera() -> Platform:
    """LLNL Hera: 256 nodes, cheapest checkpoints, worst error rates."""
    return Platform(
        name="Hera",
        nodes=256,
        lambda_f=9.46e-7,
        lambda_s=3.38e-6,
        costs=default_costs(C_D=300.0, C_M=15.4),
    )


def atlas() -> Platform:
    """LLNL Atlas: 512 nodes, highest silent-error rate."""
    return Platform(
        name="Atlas",
        nodes=512,
        lambda_f=5.19e-7,
        lambda_s=7.78e-6,
        costs=default_costs(C_D=439.0, C_M=9.1),
    )


def coastal() -> Platform:
    """LLNL Coastal: 1024 nodes, expensive disk, cheap memory checkpoints."""
    return Platform(
        name="Coastal",
        nodes=1024,
        lambda_f=4.02e-7,
        lambda_s=2.01e-6,
        costs=default_costs(C_D=1051.0, C_M=4.5),
    )


def coastal_ssd() -> Platform:
    """Coastal with SSD-backed memory checkpoints: larger but slower C_M."""
    return Platform(
        name="Coastal SSD",
        nodes=1024,
        lambda_f=4.02e-7,
        lambda_s=2.01e-6,
        costs=default_costs(C_D=2500.0, C_M=180.0),
    )


#: Name -> factory for the four Table-2 platforms, in the paper's order.
PLATFORMS: Dict[str, "type(hera)"] = {
    "hera": hera,
    "atlas": atlas,
    "coastal": coastal,
    "coastal_ssd": coastal_ssd,
}


def platform_names() -> List[str]:
    """The catalog platform keys, in the paper's Table-2 order."""
    return list(PLATFORMS.keys())


def get_platform(name: str) -> Platform:
    """Look up a Table-2 platform by (case/space-insensitive) name."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    try:
        return PLATFORMS[key]()
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {', '.join(PLATFORMS)}"
        ) from None
