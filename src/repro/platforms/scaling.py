"""Weak-scaling transforms (Section 6.3).

The weak-scaling experiment derives per-node MTBFs from the Hera platform
(8.57 years for fail-stop, 2.4 years for silent errors) and scales the
platform rate linearly with the node count: with ``p`` nodes the platform
MTBF is the per-node MTBF divided by ``p`` (Proposition 1.2 of the
fault-tolerance book cited by the paper).  Under weak scaling the problem
size per node is constant, so ``C_M`` stays constant, and the paper
optimistically keeps ``C_D`` constant too (I/O bandwidth scaled with the
machine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.catalog import hera
from repro.platforms.platform import Platform, default_costs

#: Seconds per (Julian) year, used to express per-node MTBFs.
SECONDS_PER_YEAR = 365.25 * 86400.0


@dataclass(frozen=True)
class NodeReliability:
    """Per-node reliability, expressed as individual MTBFs in seconds."""

    mtbf_fail_stop: float
    mtbf_silent: float

    def __post_init__(self) -> None:
        if self.mtbf_fail_stop <= 0 or self.mtbf_silent <= 0:
            raise ValueError("per-node MTBFs must be positive")

    @property
    def lambda_f_node(self) -> float:
        """Per-node fail-stop rate."""
        return 1.0 / self.mtbf_fail_stop

    @property
    def lambda_s_node(self) -> float:
        """Per-node silent-error rate."""
        return 1.0 / self.mtbf_silent

    def platform_rates(self, nodes: int) -> tuple:
        """``(lambda_f, lambda_s)`` for a platform of ``nodes`` nodes."""
        if nodes <= 0:
            raise ValueError(f"node count must be positive, got {nodes}")
        return nodes * self.lambda_f_node, nodes * self.lambda_s_node


def hera_node_reliability() -> NodeReliability:
    """Per-node MTBFs computed from the Hera platform rates.

    Section 6.3.1 quotes 8.57 years (fail-stop) and 2.4 years (silent) for
    one node; these follow directly from Table 2: e.g.
    ``1 / (9.46e-7 / 256) = 2.706e8 s ~ 8.57 years``.
    """
    base = hera()
    return NodeReliability(
        mtbf_fail_stop=base.nodes / base.lambda_f,
        mtbf_silent=base.nodes / base.lambda_s,
    )


def scale_platform(base: Platform, nodes: int) -> Platform:
    """Scale ``base`` to ``nodes`` nodes keeping per-node rates constant.

    Error rates grow linearly with the node count; checkpoint costs stay
    constant (the paper's optimistic weak-scaling assumption).
    """
    if nodes <= 0:
        raise ValueError(f"node count must be positive, got {nodes}")
    factor = nodes / base.nodes
    return Platform(
        name=f"{base.name} x{nodes}",
        nodes=nodes,
        lambda_f=base.lambda_f * factor,
        lambda_s=base.lambda_s * factor,
        costs=base.costs,
    )


def weak_scaling_platform(
    nodes: int,
    *,
    C_D: float = 300.0,
    C_M: float = 15.4,
    reliability: NodeReliability = None,
) -> Platform:
    """The Figure-7/8 platform: Hera-derived per-node MTBFs at ``nodes`` nodes.

    Parameters
    ----------
    nodes:
        Number of nodes (the paper sweeps powers of two, 2^8 .. 2^18).
    C_D, C_M:
        Disk/memory checkpoint costs; Figure 7 uses (300, 15.4), Figure 8
        reduces the disk cost to 90 s.
    reliability:
        Per-node MTBFs; defaults to the Hera-derived values.
    """
    rel = reliability if reliability is not None else hera_node_reliability()
    lam_f, lam_s = rel.platform_rates(nodes)
    return Platform(
        name=f"Hera-weak x{nodes}",
        nodes=nodes,
        lambda_f=lam_f,
        lambda_s=lam_s,
        costs=default_costs(C_D=C_D, C_M=C_M),
    )
