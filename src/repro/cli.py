"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-patterns table1 --platform hera
    repro-patterns table1 --platform hera --numeric --engine analytic
    repro-patterns table2 --engine analytic
    repro-patterns fig6 --runs 50 --patterns 100
    repro-patterns fig7 --runs 20
    repro-patterns fig7 --engine analytic --paper-nodes
    repro-patterns fig8 --runs 20
    repro-patterns fig9 --sweep f
    repro-patterns fig9 --grid
    repro-patterns campaign run --scenario optimal_pattern_surface \
        --engine analytic
    repro-patterns campaign run --scenario platform_catalog \
        --cache-dir .repro-cache --journal fig6.jsonl --workers 8
    repro-patterns campaign run --scenario error_rate_sweep \
        --engine packed --pack-rows 500000
    repro-patterns campaign resume --scenario platform_catalog \
        --journal fig6.jsonl
    repro-patterns campaign cache --cache-dir .repro-cache
    repro-patterns campaign cache --cache-dir .repro-cache \
        --prune-older-than 30 --dry-run
    repro-patterns campaign cache --cache-dir .repro-cache \
        --prune-version semantics=1 --dry-run
    repro-patterns serve --cache-dir .repro-cache --jobs-dir .repro-jobs
    repro-patterns query --pattern PDMV --platform hera
    repro-patterns query --points points.json --json out.json
    repro-patterns submit --scenario platform_catalog --client alice
    repro-patterns jobs
    repro-patterns results --job j0123456789ab --json records.json
    repro-patterns serve --autotune --cache-dir .repro-cache
    repro-patterns loadtest --shape bursty --rate 40 --duration 5
    repro-patterns loadtest --trace trace.jsonl --assert-p99-ms 250

Every command accepts ``--csv PATH`` / ``--json PATH`` to persist the rows
and ``--full`` to use the paper-scale Monte-Carlo sizes (1000 patterns x
1000 runs -- hours of CPU).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.fig6 import render_fig6, run_fig6
from repro.experiments.fig7 import (
    PAPER_NODE_COUNTS,
    render_weak_scaling,
    run_weak_scaling,
)
from repro.experiments.fig8 import FIG8_C_D, render_fig8, run_fig8
from repro.experiments.fig9 import (
    PAPER_FACTORS,
    render_error_rate_sweep,
    run_error_rate_grid,
    run_error_rate_sweep,
)
from repro.experiments.io import write_csv, write_json
from repro.experiments.report import format_table
from repro.platforms.catalog import get_platform, platform_names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--csv", help="write rows to a CSV file")
    parser.add_argument("--json", help="write rows to a JSON file")
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--patterns", type=int, default=None, help="patterns per run"
    )
    parser.add_argument("--runs", type=int, default=None, help="Monte-Carlo runs")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale campaign (1000 patterns x 1000 runs; very slow)",
    )


def _add_engine(parser: argparse.ArgumentParser) -> None:
    from repro.simulation.dispatch import ENGINE_CHOICES

    parser.add_argument(
        "--engine",
        default="auto",
        choices=list(ENGINE_CHOICES),
        help="simulation engine tier (default: fastest covering tier)",
    )


def _add_daemon_address(parser: argparse.ArgumentParser) -> None:
    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

    parser.add_argument("--host", default=DEFAULT_HOST, help="daemon address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="daemon port"
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="request timeout in seconds",
    )


def _mc_sizes(args: argparse.Namespace, default_patterns: int, default_runs: int):
    if args.full:
        return 1000, 1000
    return (
        args.patterns if args.patterns is not None else default_patterns,
        args.runs if args.runs is not None else default_runs,
    )


def _emit(rows: List[Dict[str, Any]], text: str, args: argparse.Namespace) -> None:
    print(text)
    if args.csv:
        write_csv(rows, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.json:
        write_json(rows, args.json)
        print(f"wrote {args.json}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-patterns",
        description="Optimal resilience patterns: tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1 optima on one platform")
    p.add_argument(
        "--platform",
        default="hera",
        choices=platform_names(),
        help="catalog platform",
    )
    p.add_argument(
        "--numeric",
        action="store_true",
        help="also compute the numerically optimal period (slow)",
    )
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser("table2", help="platform parameter catalog")
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser("fig6", help="patterns on the four real platforms")
    _add_common(p)

    p = sub.add_parser("fig7", help="weak scaling, C_D = 300")
    p.add_argument(
        "--paper-nodes",
        action="store_true",
        help="sweep the full 2^8..2^18 node range",
    )
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser("fig8", help="weak scaling, C_D = 90")
    p.add_argument("--paper-nodes", action="store_true")
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser(
        "optimize", help="Table-1 optima for a custom platform"
    )
    p.add_argument("--lambda-f", type=float, required=True,
                   help="fail-stop error rate (1/s)")
    p.add_argument("--lambda-s", type=float, required=True,
                   help="silent error rate (1/s)")
    p.add_argument("--cd", type=float, required=True,
                   help="disk checkpoint cost (s)")
    p.add_argument("--cm", type=float, required=True,
                   help="memory checkpoint cost (s)")
    p.add_argument("--v-star", type=float, default=None,
                   help="guaranteed verification cost (default: C_M)")
    p.add_argument("--v", type=float, default=None,
                   help="partial verification cost (default: V*/100)")
    p.add_argument("--recall", type=float, default=0.8,
                   help="partial verification recall")
    _add_common(p)

    p = sub.add_parser(
        "simulate", help="Monte-Carlo one pattern family on one platform"
    )
    p.add_argument(
        "--platform", default="hera", choices=platform_names()
    )
    p.add_argument(
        "--pattern",
        default="PDMV",
        choices=["PD", "PDV*", "PDV", "PDM", "PDMV*", "PDMV"],
    )
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser(
        "makespan", help="expected makespan of a job under each pattern"
    )
    p.add_argument(
        "--platform", default="hera", choices=platform_names()
    )
    p.add_argument(
        "--base-hours", type=float, default=100.0,
        help="failure-free job duration in hours",
    )
    _add_common(p)

    p = sub.add_parser(
        "trace", help="trace one simulated pattern execution"
    )
    p.add_argument("--platform", default="hera", choices=platform_names())
    p.add_argument(
        "--pattern",
        default="PDMV",
        choices=["PD", "PDV*", "PDV", "PDM", "PDMV*", "PDMV"],
    )
    p.add_argument("--n-patterns", type=int, default=1,
                   help="patterns to trace")
    p.add_argument("--limit", type=int, default=60,
                   help="max records to print")
    p.add_argument(
        "--scale", type=int, default=None,
        help="weak-scale the platform to this many nodes first",
    )
    _add_common(p)

    p = sub.add_parser(
        "accuracy", help="first-order vs exact model across scales"
    )
    p.add_argument(
        "--simulate", action="store_true",
        help="also Monte-Carlo simulate each point (slower)",
    )
    _add_common(p)

    p = sub.add_parser(
        "campaign",
        help="declarative scenario campaigns (cached, chunked, resumable)",
    )
    p.add_argument(
        "action",
        choices=["run", "resume", "cache"],
        help="run/resume a campaign, or inspect a result cache",
    )
    p.add_argument("--spec", help="JSON campaign spec file")
    p.add_argument(
        "--scenario",
        help="registered scenario name (alternative to --spec)",
    )
    p.add_argument(
        "--set",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter (VALUE parsed as JSON, else string); "
        "repeatable",
    )
    p.add_argument("--name", help="campaign name (default: scenario name)")
    p.add_argument("--cache-dir", help="content-addressed result cache")
    p.add_argument(
        "--journal", help="JSONL journal (enables streaming + resume)"
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: all cores)",
    )
    p.add_argument(
        "--chunksize", type=int, default=None,
        help="scenario points per submitted task (default: heuristic; "
        "validated against --workers)",
    )
    p.add_argument(
        "--max-chunk", type=int, default=None,
        help="cap on the chunksize heuristic (default: 64)",
    )
    p.add_argument(
        "--pack-rows", type=int, default=None,
        help="row budget (n_runs x n_patterns summed) per packed "
        "mega-batch (default: 1000000)",
    )
    p.add_argument(
        "--no-pack", action="store_true",
        help="disable cross-point packed execution (per-point tasks "
        "only; results are identical either way)",
    )
    p.add_argument(
        "--clear", action="store_true",
        help="with 'cache': delete every entry",
    )
    p.add_argument(
        "--prune-older-than", type=float, default=None, metavar="DAYS",
        help="with 'cache': evict entries older than DAYS days "
        "(entries are content-addressed and recomputable, so age-based "
        "eviction is always safe)",
    )
    p.add_argument(
        "--prune-version", default=None, metavar="LABEL",
        help="with 'cache': evict entries of one engine generation "
        "(a version label from the cache stats, e.g. 'semantics=1', "
        "'analytic=1', 'packed=1', or 'legacy' for pre-stamp entries)",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="with --prune-older-than/--prune-version: report what "
        "would be evicted without removing anything",
    )
    _add_engine(p)
    _add_common(p)

    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

    p = sub.add_parser(
        "serve",
        help="run the online evaluation daemon (request micro-batching, "
        "tiered result cache)",
    )
    p.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    p.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"listen port (default {DEFAULT_PORT}; 0 picks an "
        "ephemeral port)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=None,
        help="micro-batch collection window in ms (default 5; 0 "
        "dispatches immediately)",
    )
    p.add_argument(
        "--pack-rows", type=int, default=None,
        help="row budget (n_runs x n_patterns summed) per evaluation "
        "batch (default: 1000000)",
    )
    p.add_argument(
        "--mem-entries", type=int, default=None,
        help="in-memory LRU result tier size (default: 4096 entries)",
    )
    p.add_argument(
        "--eval-workers", type=int, default=None,
        help="evaluation thread count (default: 2)",
    )
    p.add_argument(
        "--cache-dir",
        help="on-disk result cache shared with batch campaigns",
    )
    p.add_argument(
        "--port-file",
        help="write the bound port here once listening (for scripts "
        "starting a --port 0 daemon)",
    )
    p.add_argument(
        "--jobs-dir",
        help="persistence root for submitted campaign jobs (journals + "
        "specs; jobs resume across daemon restarts). Without it jobs "
        "work but do not survive a restart",
    )
    p.add_argument(
        "--job-inflight", type=int, default=None,
        help="concurrently dispatched job buckets across all jobs "
        "(default: 2)",
    )
    p.add_argument(
        "--autotune", action="store_true",
        help="adaptively retune --batch-window-ms/--pack-rows from the "
        "observed arrival rate (quiet traffic gets a near-zero window, "
        "bursts get a wide one); live values and controller decisions "
        "appear in /v1/stats",
    )
    p.add_argument(
        "--autotune-interval-ms", type=float, default=None,
        help="controller sampling period in ms (default 250)",
    )
    p.add_argument(
        "--autotune-window-floor-ms", type=float, default=None,
        help="smallest window the controller may set (default 0.5)",
    )
    p.add_argument(
        "--autotune-window-ceil-ms", type=float, default=None,
        help="largest window the controller may set (default 25)",
    )
    p.add_argument(
        "--eval-procs", type=int, default=None, metavar="N",
        help="resident evaluation worker processes; scheduler batches "
        "fan out across them in row-budgeted buckets with records "
        "bit-identical to in-process evaluation (default: 0, "
        "in-process)",
    )
    p.add_argument(
        "--rate-rows-per-s", type=float, default=None, metavar="ROWS",
        help="per-client admission rate in Monte-Carlo rows/s "
        "(token bucket; over-rate requests get 429 + Retry-After). "
        "Default: no admission control",
    )
    p.add_argument(
        "--burst-rows", type=int, default=None, metavar="ROWS",
        help="per-client burst capacity in rows (default: 2 seconds "
        "of --rate-rows-per-s)",
    )
    p.add_argument(
        "--queue-rows", type=int, default=None, metavar="ROWS",
        help="global cap on admitted-but-unanswered rows; beyond it "
        "requests are shed with 503 (default: unbounded)",
    )
    p.add_argument(
        "--job-ttl-days", type=float, default=None, metavar="DAYS",
        help="garbage-collect finished jobs in --jobs-dir this many "
        "days after completion (queued/running jobs are never "
        "collected; default: keep forever)",
    )
    p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault-injection plan for chaos testing, "
        "e.g. 'kill@2,drop@1,delay@3:0.1' (kill a fleet worker at "
        "batch 2, drop connection 1, delay eval call 3 by 0.1s); "
        "also honours the REPRO_FAULTS environment variable. "
        "Injection counters appear under 'faults' in /v1/stats",
    )
    p.add_argument(
        "--drain-grace-s", type=float, default=None, metavar="S",
        help="graceful-drain budget on SIGTERM/SIGINT: how long to "
        "wait for in-flight requests before force-closing their "
        "connections (default 10)",
    )
    p.add_argument(
        "--no-obs", action="store_true",
        help="disable observability entirely (request tracing, "
        "GET /metrics, GET /v1/trace); the default keeps it on",
    )
    p.add_argument(
        "--log-json", action="store_true",
        help="structured JSON logging to stderr: one object per line "
        "with trace IDs (requests, admission rejections, job "
        "lifecycle)",
    )
    p.add_argument(
        "--slow-request-ms", type=float, default=None, metavar="MS",
        help="log a slow_request event for requests at or above this "
        "server-side latency (works without --log-json)",
    )
    p.add_argument(
        "--record-trace", default=None, metavar="FILE",
        help="journal every admitted /v1/evaluate arrival to FILE as "
        "a replayable arrival trace (JSONL; replay it with "
        "'repro loadtest --trace FILE')",
    )
    p.add_argument(
        "--trace-buffer", type=int, default=None, metavar="N",
        help="completed request traces kept for GET /v1/trace "
        "(default 256)",
    )

    p = sub.add_parser(
        "query", help="query a running evaluation daemon"
    )
    p.add_argument("--host", default=DEFAULT_HOST, help="daemon address")
    p.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="daemon port"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0,
        help="request timeout in seconds",
    )
    p.add_argument(
        "--points",
        help="JSON file with a list of scenario points (mixed batches); "
        "alternative to --pattern/--platform",
    )
    p.add_argument(
        "--pattern",
        default="PDMV",
        choices=["PD", "PDV*", "PDV", "PDM", "PDMV*", "PDMV"],
    )
    p.add_argument(
        "--platform", default="hera", choices=platform_names()
    )
    p.add_argument(
        "--health", action="store_true",
        help="print the daemon's health document and exit",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print the daemon's stats document and exit",
    )
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser(
        "submit",
        help="submit a campaign spec to a running daemon as a "
        "background job",
    )
    _add_daemon_address(p)
    p.add_argument("--spec", help="JSON campaign spec file")
    p.add_argument(
        "--scenario",
        help="registered scenario name (alternative to --spec)",
    )
    p.add_argument(
        "--set",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="scenario parameter (VALUE parsed as JSON, else string); "
        "repeatable",
    )
    p.add_argument("--name", help="campaign name (default: scenario name)")
    p.add_argument(
        "--client", default=None,
        help="client identity for fair-share scheduling "
        "(default: anonymous)",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="stream the job's records to completion and print the "
        "campaign table (like a local 'campaign run')",
    )
    _add_engine(p)
    _add_common(p)

    p = sub.add_parser(
        "jobs", help="list (or inspect) a daemon's campaign jobs"
    )
    _add_daemon_address(p)
    p.add_argument(
        "--job", default=None, metavar="ID",
        help="print one job's full document as JSON instead of the list",
    )
    p.add_argument(
        "--client", default=None,
        help="only this client's jobs",
    )
    p.add_argument(
        "--cancel", default=None, metavar="ID",
        help="cancel a job (idempotent on finished jobs)",
    )
    p.add_argument(
        "--prune", type=float, default=None, metavar="DAYS",
        help="offline cleanup: delete terminal job dirs under "
        "--jobs-dir older than DAYS days (no daemon needed; running "
        "jobs are never touched)",
    )
    p.add_argument(
        "--jobs-dir", default=None,
        help="jobs directory for --prune (the daemon's --jobs-dir)",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="with --prune: list what would be deleted, delete nothing",
    )
    p.add_argument("--csv", help="write rows to a CSV file")
    p.add_argument("--json", help="write rows to a JSON file")

    p = sub.add_parser(
        "results",
        help="stream a campaign job's records from a daemon",
    )
    _add_daemon_address(p)
    p.add_argument(
        "--job", required=True, metavar="ID", help="job to stream"
    )
    p.add_argument(
        "--offset", type=int, default=0,
        help="start streaming from this point index (default 0)",
    )
    p.add_argument(
        "--no-follow", action="store_true",
        help="return only the records finished right now instead of "
        "polling to completion",
    )
    p.add_argument("--csv", help="write rows to a CSV file")
    p.add_argument("--json", help="write rows to a JSON file")

    from repro.loadgen.traces import TRACE_SHAPES

    p = sub.add_parser(
        "loadtest",
        help="replay an arrival trace against a daemon and report "
        "latency SLOs (p50/p95/p99, throughput)",
    )
    _add_daemon_address(p)
    p.add_argument(
        "--trace", default=None,
        help="JSONL arrival trace to replay (from --save-trace or "
        "repro.loadgen.traces); alternative to --shape",
    )
    p.add_argument(
        "--shape", default="poisson", choices=list(TRACE_SHAPES),
        help="generated arrival process (default: poisson)",
    )
    p.add_argument(
        "--rate", type=float, default=50.0,
        help="mean arrival rate in requests/s (bursty: quiet-phase "
        "base rate; default 50)",
    )
    p.add_argument(
        "--duration", type=float, default=5.0,
        help="trace horizon in seconds (default 5)",
    )
    p.add_argument(
        "--seed", type=int, default=20160601,
        help="trace seed: same shape/rate/duration/seed => identical "
        "request schedule and points (default 20160601)",
    )
    p.add_argument(
        "--point-patterns", type=int, default=None, metavar="N",
        help="patterns per simulate point in the generated mix "
        "(default 4)",
    )
    p.add_argument(
        "--point-runs", type=int, default=None, metavar="N",
        help="runs per pattern in the generated mix (default 2)",
    )
    p.add_argument(
        "--analytic-fraction", type=float, default=0.0,
        help="fraction of arrivals evaluated on the analytic tier",
    )
    p.add_argument(
        "--duplicate-fraction", type=float, default=0.0,
        help="fraction of arrivals re-issuing an earlier point "
        "(exercises coalescing/cache)",
    )
    p.add_argument(
        "--mode", default="open", choices=["open", "closed"],
        help="open: fire at trace timestamps (SLO discipline); "
        "closed: fixed worker pool back-to-back (saturation)",
    )
    p.add_argument(
        "--concurrency", type=int, default=32,
        help="client pool size (default 32)",
    )
    p.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="drop the first N completions from every latency/"
        "throughput figure (default: 5%% of the trace)",
    )
    p.add_argument(
        "--save-trace", default=None, metavar="PATH",
        help="also write the replayed trace as JSONL (recorded traces "
        "replay byte-for-byte)",
    )
    p.add_argument(
        "--assert-p99-ms", type=float, default=None, metavar="MS",
        help="exit 1 unless the measured p99 latency is <= MS "
        "(the CI SLO gate)",
    )
    p.add_argument(
        "--assert-throughput-rps", type=float, default=None,
        metavar="RPS",
        help="exit 1 unless measured throughput is >= RPS",
    )
    p.add_argument(
        "--hedge-ms", type=float, default=None, metavar="MS",
        help="hedge requests: duplicate any request still unanswered "
        "after MS milliseconds on a second connection, first answer "
        "wins (server-side coalescing makes the loser nearly free)",
    )
    p.add_argument(
        "--hedge-percentile", type=float, default=None, metavar="P",
        help="adaptive hedging: hedge past the P-th percentile of the "
        "latencies observed so far in this replay (mutually exclusive "
        "with --hedge-ms)",
    )
    p.add_argument(
        "--slowest", type=int, default=None, metavar="N",
        help="report the N slowest requests with their daemon trace "
        "IDs (look each one up via GET /v1/trace/<id>)",
    )
    p.add_argument(
        "--json", help="write the full SLO report to a JSON file"
    )

    p = sub.add_parser("fig9", help="error-rate sweeps at 100k nodes")
    p.add_argument(
        "--sweep",
        choices=["f", "s"],
        help="1-D sweep over lambda_f (9d-g) or lambda_s (9h-k)",
    )
    p.add_argument(
        "--grid",
        action="store_true",
        help="2-D overhead surface (9a-c)",
    )
    p.add_argument(
        "--paper-factors",
        action="store_true",
        help="use the full 0.2..2.0 factor grid",
    )
    _add_common(p)

    return parser


def _parse_param_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--set KEY=VALUE`` flags; VALUE is JSON when valid."""
    import json

    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(
                f"invalid --set {pair!r}: expected KEY=VALUE"
            )
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _build_campaign_spec(args: argparse.Namespace):
    """Assemble a CampaignSpec from the shared campaign/submit flags.

    ``--spec``/``--scenario``/``--set``/``--name`` pick the campaign;
    ``--patterns``/``--runs``/``--full``/``--seed``/``--engine`` apply
    the usual Monte-Carlo overrides -- identically for a local
    ``campaign run`` and a daemon-side ``submit``, which is what makes
    the two produce bit-identical records.
    """
    from dataclasses import replace

    from repro.campaign.registry import scenario_names
    from repro.campaign.spec import CampaignSpec

    overrides = _parse_param_overrides(args.params)
    if args.spec:
        try:
            spec = CampaignSpec.from_json_file(args.spec)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"cannot load campaign spec {args.spec!r}: {exc}"
            )
        if overrides:
            spec = replace(spec, params={**spec.params, **overrides})
    elif args.scenario:
        spec = CampaignSpec(
            name=args.name or args.scenario,
            scenario=args.scenario,
            params=overrides,
        )
    else:
        raise SystemExit(
            f"{args.command} requires --spec or --scenario"
        )
    if spec.scenario not in scenario_names():
        raise SystemExit(
            f"unknown scenario {spec.scenario!r}; "
            f"available: {', '.join(scenario_names())}"
        )

    n_pat, n_runs = _mc_sizes(args, spec.n_patterns, spec.n_runs)
    spec = replace(spec, n_patterns=n_pat, n_runs=n_runs)
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    if args.engine != "auto":
        spec = replace(spec, engine=args.engine)
    return spec


def _cmd_campaign(args: argparse.Namespace) -> int:
    """The ``campaign`` subcommand: run / resume / cache."""
    from repro.campaign.cache import ResultCache
    from repro.campaign.executor import run_campaign
    from repro.campaign.report import (
        render_cache_stats,
        render_campaign,
        rows_from_records,
    )

    if args.action == "cache":
        if not args.cache_dir:
            raise SystemExit("campaign cache requires --cache-dir")
        exclusive = [
            args.clear,
            args.prune_older_than is not None,
            args.prune_version is not None,
        ]
        if sum(exclusive) > 1:
            raise SystemExit(
                "--clear, --prune-older-than and --prune-version are "
                "mutually exclusive"
            )
        if args.dry_run and not (exclusive[1] or exclusive[2]):
            raise SystemExit(
                "--dry-run requires --prune-older-than or --prune-version"
            )
        cache = ResultCache(args.cache_dir)
        if args.clear:
            removed = cache.clear()
            print(f"cleared {removed} cache entries", file=sys.stderr)
        if args.prune_older_than is not None:
            try:
                report = cache.prune_older_than(
                    args.prune_older_than, dry_run=args.dry_run
                )
            except ValueError as exc:
                raise SystemExit(f"--prune-older-than: {exc}")
            verb = "would evict" if report.dry_run else "evicted"
            print(
                f"{verb} {report.n_pruned} of {report.n_examined} "
                f"entries ({report.bytes_pruned} bytes) older than "
                f"{args.prune_older_than:g} days",
                file=sys.stderr,
            )
        if args.prune_version is not None:
            try:
                report = cache.prune_version(
                    args.prune_version, dry_run=args.dry_run
                )
            except ValueError as exc:
                raise SystemExit(f"--prune-version: {exc}")
            verb = "would evict" if report.dry_run else "evicted"
            print(
                f"{verb} {report.n_pruned} of {report.n_examined} "
                f"entries ({report.bytes_pruned} bytes) labelled "
                f"{args.prune_version!r}",
                file=sys.stderr,
            )
        print(render_cache_stats(cache))
        return 0

    spec = _build_campaign_spec(args)

    if args.action == "resume":
        if not args.journal:
            raise SystemExit("campaign resume requires --journal")
        import os

        if not os.path.exists(args.journal):
            raise SystemExit(
                f"cannot resume: journal {args.journal!r} does not exist"
            )

    from repro.campaign.executor import CampaignConfigError

    try:
        result = run_campaign(
            spec,
            cache=args.cache_dir,
            journal_path=args.journal,
            n_workers=args.workers,
            chunksize=args.chunksize,
            max_chunk=args.max_chunk,
            pack_rows=args.pack_rows,
            packing=not args.no_pack,
        )
    except CampaignConfigError as exc:
        # Flag mistakes get a one-line message; computation errors keep
        # their traceback.
        raise SystemExit(f"campaign configuration error: {exc}")
    if result.n_journal_corrupt:
        print(
            f"note: skipped {result.n_journal_corrupt} corrupt/truncated "
            "journal line(s); the affected points were recomputed",
            file=sys.stderr,
        )
    # Normalise over the union of record keys: heterogeneous scenarios
    # (e.g. sweeps with anchor points) must not lose columns in the
    # table/CSV just because the first record lacks them.
    _emit(rows_from_records(result.records), render_campaign(result), args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the evaluation daemon."""
    from repro.service.faults import FleetUnavailableError
    from repro.service.server import ServiceConfig, run_service

    config = ServiceConfig(host=args.host, port=args.port)
    if args.batch_window_ms is not None:
        config.batch_window_ms = args.batch_window_ms
    if args.pack_rows is not None:
        config.pack_rows = args.pack_rows
    if args.mem_entries is not None:
        config.mem_entries = args.mem_entries
    if args.eval_workers is not None:
        config.eval_workers = args.eval_workers
    config.cache_dir = args.cache_dir
    config.port_file = args.port_file
    config.jobs_dir = args.jobs_dir
    if args.job_inflight is not None:
        config.job_inflight = args.job_inflight
    config.autotune = args.autotune
    config.autotune_interval_ms = args.autotune_interval_ms
    config.autotune_window_floor_ms = args.autotune_window_floor_ms
    config.autotune_window_ceil_ms = args.autotune_window_ceil_ms
    if args.eval_procs is not None:
        config.eval_procs = args.eval_procs
    config.rate_rows_per_s = args.rate_rows_per_s
    config.burst_rows = args.burst_rows
    if args.queue_rows is not None:
        config.queue_rows = args.queue_rows
    config.job_ttl_days = args.job_ttl_days
    config.faults = args.faults
    if args.drain_grace_s is not None:
        config.drain_grace_s = args.drain_grace_s
    config.observability = not args.no_obs
    config.log_json = args.log_json
    config.slow_request_ms = args.slow_request_ms
    config.record_trace = args.record_trace
    if args.trace_buffer is not None:
        config.trace_buffer = args.trace_buffer
    if args.no_obs and (
        args.log_json
        or args.slow_request_ms is not None
        or args.record_trace is not None
        or args.trace_buffer is not None
    ):
        raise SystemExit(
            "--no-obs conflicts with --log-json/--slow-request-ms/"
            "--record-trace/--trace-buffer (they all need the "
            "observability subsystem)"
        )
    if args.port < 0:
        raise SystemExit(f"--port must be >= 0, got {args.port}")
    if (
        args.burst_rows is not None or args.queue_rows is not None
    ) and args.rate_rows_per_s is None:
        raise SystemExit(
            "--burst-rows/--queue-rows require --rate-rows-per-s "
            "(they configure admission control)"
        )

    def announce(_scheduler, server) -> None:
        batching = (
            "adaptive"
            if config.autotune
            else f"window {config.batch_window_ms:g} ms"
        )
        fleet = (
            f"fleet {config.eval_procs} procs"
            if config.eval_procs
            else "in-process"
        )
        admission = (
            f"admission {config.rate_rows_per_s:g} rows/s"
            if config.rate_rows_per_s is not None
            else "admission off"
        )
        print(
            f"repro service listening on "
            f"http://{server.host}:{server.port} "
            f"({batching}, "
            f"pack-rows {config.pack_rows}, "
            f"{fleet}, {admission}, "
            f"cache {config.cache_dir or 'memory-only'}, "
            f"jobs {config.jobs_dir or 'memory-only'})",
            file=sys.stderr,
            flush=True,
        )

    try:
        return run_service(config, ready=announce)
    except ValueError as exc:
        # Range constraints live with the scheduler/cache constructors
        # (one source of truth); surface them as one-line flag errors.
        raise SystemExit(f"serve configuration error: {exc}")
    except FleetUnavailableError as exc:
        # A worker died during constructor warm-up: fail fast with the
        # cause instead of hanging at the first batch.
        raise SystemExit(f"serve startup failed: {exc}")


def _cmd_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: evaluate points on a running daemon."""
    import json

    from repro.campaign.report import rows_from_records
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.health:
            print(json.dumps(client.health(), indent=2))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.points:
            try:
                with open(args.points) as fh:
                    data = json.load(fh)
            except (OSError, ValueError) as exc:
                raise SystemExit(
                    f"cannot load points file {args.points!r}: {exc}"
                )
            points = data if isinstance(data, list) else [data]
            title = (
                f"{len(points)} point(s) from {args.points} via "
                f"{args.host}:{args.port}"
            )
        else:
            n_pat, n_runs = _mc_sizes(args, 100, 50)
            point: Dict[str, Any] = {
                "mode": "simulate",
                "kind": args.pattern,
                "platform": args.platform,
                "engine": args.engine,
                "n_patterns": n_pat,
                "n_runs": n_runs,
                "seed": args.seed if args.seed is not None else 20160601,
            }
            points = [point]
            title = (
                f"{args.pattern} on {args.platform} via "
                f"{args.host}:{args.port}"
            )
        result = client.evaluate(points)
        rows = rows_from_records(result.records)
        _emit(rows, format_table(rows, title=title), args)
        return 0
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    finally:
        client.close()


def _cmd_submit(args: argparse.Namespace) -> int:
    """The ``submit`` subcommand: run a campaign as a daemon-side job."""
    from repro.campaign.report import rows_from_records
    from repro.service.client import ServiceClient, ServiceError

    spec = _build_campaign_spec(args)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        doc = client.submit_campaign(spec, client=args.client)
        print(
            f"submitted job {doc['id']} ({doc['name']}: "
            f"{doc['progress']['points']} points, state {doc['state']})",
            file=sys.stderr,
        )
        if not args.wait:
            print(doc["id"])
            return 0
        records = list(client.iter_results(doc["id"]))
        final = client.job(doc["id"])
        rows = rows_from_records(records)
        _emit(
            rows,
            format_table(
                rows,
                title=f"job {doc['id']} ({final['state']}) -- "
                f"{spec.name} via {args.host}:{args.port}",
            ),
            args,
        )
        return 0 if final["state"] == "done" else 1
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    finally:
        client.close()


def _cmd_jobs(args: argparse.Namespace) -> int:
    """The ``jobs`` subcommand: list/inspect/cancel/prune daemon jobs."""
    import json

    from repro.service.client import ServiceClient, ServiceError

    if args.prune is not None:
        # Offline path: walks the jobs dir directly, no daemon needed.
        from repro.service.jobs.store import JobStore

        if not args.jobs_dir:
            raise SystemExit("--prune requires --jobs-dir")
        if args.prune < 0:
            raise SystemExit(
                f"--prune must be >= 0 days, got {args.prune}"
            )
        store = JobStore(args.jobs_dir)
        pruned = store.prune(args.prune, dry_run=args.dry_run)
        verb = "would delete" if args.dry_run else "deleted"
        for job_id, state in pruned:
            print(f"{verb} {job_id} ({state})")
        print(
            f"{verb} {len(pruned)} terminal job(s) older than "
            f"{args.prune:g} day(s) under {store.root}",
            file=sys.stderr,
        )
        return 0

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.cancel:
            doc = client.cancel_job(args.cancel)
            print(
                f"job {doc['id']} is now {doc['state']}", file=sys.stderr
            )
            return 0
        if args.job:
            print(json.dumps(client.job(args.job), indent=2))
            return 0
        docs = client.jobs(client=args.client)
        rows = [
            {
                "id": d["id"],
                "name": d["name"],
                "scenario": d["scenario"],
                "client": d["client"],
                "state": d["state"],
                "points": d["progress"]["points"],
                "done": d["progress"]["done"],
                "failed": d["progress"]["failed"],
            }
            for d in docs
        ]
        _emit(
            rows,
            format_table(
                rows, title=f"jobs on {args.host}:{args.port}"
            ),
            args,
        )
        return 0
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    finally:
        client.close()


def _cmd_results(args: argparse.Namespace) -> int:
    """The ``results`` subcommand: stream a job's records."""
    from repro.campaign.report import rows_from_records
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.no_follow:
            records = []
            offset = args.offset
            while True:
                page = client.job_results(args.job, offset=offset)
                records.extend(page["records"])
                offset = page["next_offset"]
                if not page["records"]:
                    break
            state = page["state"]
        else:
            records = list(
                client.iter_results(args.job, offset=args.offset)
            )
            state = client.job(args.job)["state"]
        rows = rows_from_records(records)
        _emit(
            rows,
            format_table(
                rows,
                title=f"job {args.job} ({state}) -- "
                f"{len(records)} record(s) from offset {args.offset}",
            ),
            args,
        )
        return 0
    except ServiceError as exc:
        raise SystemExit(f"service error: {exc}")
    finally:
        client.close()


def _render_latency(block: Dict[str, Any]) -> str:
    """One-line latency block for the loadtest report."""
    return (
        f"p50 {block['p50_ms']:8.2f} ms   "
        f"p95 {block['p95_ms']:8.2f} ms   "
        f"p99 {block['p99_ms']:8.2f} ms   "
        f"mean {block['mean_ms']:8.2f} ms   "
        f"ewma {block['ewma_ms']:8.2f} ms"
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """The ``loadtest`` subcommand: trace in, SLO report out."""
    from repro.loadgen.replay import WorkloadReplayer
    from repro.loadgen.traces import (
        PointMix,
        load_trace,
        make_trace,
        save_trace,
    )
    from repro.service.client import ServiceClient, ServiceError

    if args.trace:
        try:
            events = load_trace(args.trace)
        except OSError as exc:
            raise SystemExit(
                f"cannot load trace {args.trace!r}: {exc}"
            )
        if not events:
            raise SystemExit(f"trace {args.trace!r} has no events")
        source = args.trace
    else:
        try:
            mix = PointMix(
                analytic_fraction=args.analytic_fraction,
                duplicate_fraction=args.duplicate_fraction,
                n_patterns=(
                    args.point_patterns
                    if args.point_patterns is not None
                    else 4
                ),
                n_runs=(
                    args.point_runs
                    if args.point_runs is not None
                    else 2
                ),
            )
            events = make_trace(
                args.shape,
                rate=args.rate,
                duration_s=args.duration,
                seed=args.seed,
                mix=mix,
            )
        except ValueError as exc:
            raise SystemExit(f"loadtest configuration error: {exc}")
        source = (
            f"{args.shape} (rate {args.rate:g}/s, {args.duration:g}s, "
            f"seed {args.seed})"
        )
    if args.save_trace:
        save_trace(events, args.save_trace)
        print(
            f"wrote {len(events)} events to {args.save_trace}",
            file=sys.stderr,
        )
    warmup = (
        args.warmup
        if args.warmup is not None
        else max(1, len(events) // 20)
    )
    try:
        with ServiceClient(
            args.host, args.port, timeout=args.timeout
        ) as probe:
            probe.health()  # fail fast with a clear message
        replayer = WorkloadReplayer(
            args.host,
            args.port,
            mode=args.mode,
            concurrency=args.concurrency,
            timeout=args.timeout,
            hedge_after_s=(
                args.hedge_ms / 1e3
                if args.hedge_ms is not None
                else None
            ),
            hedge_percentile=args.hedge_percentile,
        )
        result = replayer.run(events)
    except (ServiceError, ValueError) as exc:
        raise SystemExit(f"service error: {exc}")
    report = result.report(warmup_drop=warmup)
    report["trace"] = source
    if args.slowest is not None:
        report["slowest"] = result.slowest(args.slowest)

    print(
        f"replayed {report['n_requests']} requests from {source} "
        f"({args.mode} loop, concurrency {args.concurrency}) in "
        f"{result.wall_s:.2f}s against {args.host}:{args.port}"
    )
    print(
        f"  measured {report['n_measured']} "
        f"({report['n_warmup_dropped']} warm-up dropped), "
        f"errors {report['n_errors']}, "
        f"throughput {report['throughput_rps']:.1f} req/s"
    )
    if report["n_hedged"] or report["n_connect_retries"]:
        print(
            f"  resilience hedged {report['n_hedged']} "
            f"(won {report['n_hedge_wins']}), "
            f"connect retries {report['n_connect_retries']}"
        )
    if report["latency"] is not None:
        print(f"  latency  {_render_latency(report['latency'])}")
        for name, block in report["classes"].items():
            print(
                f"  {name:>8s} n={block['n']:<5d} "
                f"{_render_latency(block)}"
            )
    if args.slowest is not None:
        print(f"  slowest {len(report['slowest'])} request(s):")
        for entry in report["slowest"]:
            trace_ref = (
                f"trace {entry['trace_id']}"
                if entry["trace_id"]
                else "no trace id (daemon obs off?)"
            )
            print(
                f"    #{entry['index']:<5d} {entry['class']:>8s} "
                f"{entry['latency_ms']:9.2f} ms  "
                f"status {entry['status']}  {trace_ref}"
            )
    if args.json:
        write_json(report, args.json)
        print(f"wrote {args.json}", file=sys.stderr)

    failures: List[str] = []
    asserting = (
        args.assert_p99_ms is not None
        or args.assert_throughput_rps is not None
    )
    if asserting and report["n_errors"]:
        failures.append(f"{report['n_errors']} request(s) failed")
    if args.assert_p99_ms is not None:
        p99 = (
            report["latency"]["p99_ms"]
            if report["latency"] is not None
            else float("inf")
        )
        verdict = "ok" if p99 <= args.assert_p99_ms else "FAIL"
        print(
            f"SLO p99 {p99:.2f} ms <= {args.assert_p99_ms:g} ms: "
            f"{verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"p99 {p99:.2f} ms exceeds {args.assert_p99_ms:g} ms"
            )
    if args.assert_throughput_rps is not None:
        rps = report["throughput_rps"]
        verdict = (
            "ok" if rps >= args.assert_throughput_rps else "FAIL"
        )
        print(
            f"SLO throughput {rps:.1f} req/s >= "
            f"{args.assert_throughput_rps:g} req/s: {verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"throughput {rps:.1f} req/s below "
                f"{args.assert_throughput_rps:g} req/s"
            )
    for failure in failures:
        print(f"SLO FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "campaign":
        return _cmd_campaign(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "query":
        return _cmd_query(args)

    if args.command == "submit":
        return _cmd_submit(args)

    if args.command == "jobs":
        return _cmd_jobs(args)

    if args.command == "results":
        return _cmd_results(args)

    if args.command == "loadtest":
        return _cmd_loadtest(args)

    if args.command == "table1":
        platform = get_platform(args.platform)
        from repro.experiments.table1 import run_table1

        rows = run_table1(
            platform, include_numeric=args.numeric, engine=args.engine
        )
        _emit(
            rows,
            format_table(
                rows, title=f"Table 1 -- optimal patterns on {platform.name}"
            ),
            args,
        )
        return 0

    if args.command == "table2":
        from repro.experiments.table2 import run_table2

        rows = run_table2(engine=args.engine)
        _emit(
            rows,
            format_table(rows, title="Table 2 -- platform parameters"),
            args,
        )
        return 0

    if args.command == "optimize":
        from repro.experiments.table1 import run_table1
        from repro.platforms.platform import Platform, default_costs

        platform = Platform(
            name="custom",
            nodes=1,
            lambda_f=args.lambda_f,
            lambda_s=args.lambda_s,
            costs=default_costs(
                C_D=args.cd,
                C_M=args.cm,
                V_star=args.v_star,
                V=args.v,
                r=args.recall,
            ),
        )
        rows = run_table1(platform)
        _emit(
            rows,
            format_table(
                rows, title=f"Table 1 -- optimal patterns on {platform.name}"
            ),
            args,
        )
        return 0

    if args.command == "simulate":
        from repro.core.builders import PatternKind
        from repro.simulation.runner import simulate_optimal_pattern

        kind = next(k for k in PatternKind if k.value == args.pattern)
        platform = get_platform(args.platform)
        if args.engine == "analytic":
            from repro.core.batch import evaluate_analytic

            rec = evaluate_analytic(kind, platform)
            rows = [
                {
                    "pattern": kind.value,
                    "platform": platform.name,
                    "engine": "analytic",
                    "predicted": rec["predicted"],
                    "simulated": rec["simulated"],
                    "divergence": rec["divergence"],
                    "H_numeric": rec["H_numeric"],
                    "W*_hours": rec["W*_hours"],
                    "n*": rec["n*"],
                    "m*": rec["m*"],
                }
            ]
            _emit(
                rows,
                format_table(
                    rows,
                    title=f"Analytic model: {kind.value} on "
                    f"{platform.name} (exact recursion, no sampling)",
                ),
                args,
            )
            return 0
        n_pat, n_runs = _mc_sizes(args, 100, 50)
        res = simulate_optimal_pattern(
            kind,
            platform,
            n_patterns=n_pat,
            n_runs=n_runs,
            seed=args.seed if args.seed is not None else 20160601,
            engine=args.engine,
        )
        agg = res.aggregated
        lo, hi = agg.overhead_ci95()
        rows = [
            {
                "pattern": kind.value,
                "platform": platform.name,
                "engine": res.engine,
                "predicted": res.predicted_overhead,
                "simulated": agg.mean_overhead,
                "ci95_low": lo,
                "ci95_high": hi,
                "disk_ckpts_per_hour": agg.rates_per_hour["disk_checkpoints"],
                "mem_ckpts_per_hour": agg.rates_per_hour["memory_checkpoints"],
                "verifs_per_hour": agg.rates_per_hour["verifications"],
                "disk_recoveries_per_day": agg.rates_per_day["disk_recoveries"],
                "mem_recoveries_per_day": agg.rates_per_day["memory_recoveries"],
            }
        ]
        _emit(
            rows,
            format_table(
                rows,
                title=f"Simulation: {kind.value} on {platform.name} "
                f"({n_runs} runs x {n_pat} patterns)",
            ),
            args,
        )
        return 0

    if args.command == "makespan":
        from repro.core.makespan import compare_makespans

        platform = get_platform(args.platform)
        rows = compare_makespans(platform, args.base_hours * 3600.0)
        _emit(
            rows,
            format_table(
                rows,
                title=f"Expected makespan of a {args.base_hours:g}h job "
                f"on {platform.name}",
            ),
            args,
        )
        return 0

    if args.command == "fig6":
        n_pat, n_runs = _mc_sizes(args, 100, 50)
        rows = run_fig6(
            n_patterns=n_pat,
            n_runs=n_runs,
            seed=args.seed if args.seed is not None else 20160523,
        )
        _emit(rows, render_fig6(rows), args)
        return 0

    if args.command in ("fig7", "fig8"):
        n_pat, n_runs = _mc_sizes(args, 50, 20)
        nodes = PAPER_NODE_COUNTS if args.paper_nodes else None
        if args.command == "fig7":
            rows = run_weak_scaling(
                nodes,
                n_patterns=n_pat,
                n_runs=n_runs,
                seed=args.seed if args.seed is not None else 20160607,
                engine=args.engine,
            )
            _emit(rows, render_weak_scaling(rows), args)
        else:
            rows = run_fig8(
                nodes,
                n_patterns=n_pat,
                n_runs=n_runs,
                seed=args.seed if args.seed is not None else 20160608,
                engine=args.engine,
            )
            _emit(rows, render_fig8(rows), args)
        return 0

    if args.command == "trace":
        import numpy as np

        from repro.core.builders import PatternKind
        from repro.core.formulas import optimal_pattern, simulation_costs
        from repro.platforms.scaling import scale_platform
        from repro.simulation.engine import PatternSimulator
        from repro.simulation.trace import TraceRecorder

        kind = next(k for k in PatternKind if k.value == args.pattern)
        platform = get_platform(args.platform)
        if args.scale is not None:
            platform = scale_platform(platform, args.scale)
        opt = optimal_pattern(kind, platform)
        recorder = TraceRecorder()
        sim = PatternSimulator(
            opt.pattern, simulation_costs(kind, platform), trace=recorder
        )
        rng = np.random.default_rng(
            args.seed if args.seed is not None else 20160615
        )
        stats = sim.run(args.n_patterns, rng)
        print(
            f"Traced {args.n_patterns} pattern(s) of {kind.value} on "
            f"{platform.name}: {len(recorder)} operations, "
            f"{stats.total_time:.0f}s simulated, "
            f"overhead {100 * stats.overhead:.1f}%"
        )
        print(recorder.render(limit=args.limit))
        return 0

    if args.command == "accuracy":
        from repro.analysis.accuracy import accuracy_sweep, render_accuracy_sweep

        n_pat, n_runs = _mc_sizes(args, 40, 15)
        rows = accuracy_sweep(
            simulate=args.simulate,
            n_patterns=n_pat,
            n_runs=n_runs,
            seed=args.seed if args.seed is not None else 20160612,
        )
        _emit(rows, render_accuracy_sweep(rows), args)
        return 0

    if args.command == "fig9":
        n_pat, n_runs = _mc_sizes(args, 20, 10)
        factors = PAPER_FACTORS if args.paper_factors else None
        if args.grid:
            rows = run_error_rate_grid(
                factors,
                n_patterns=n_pat,
                n_runs=n_runs,
                seed=args.seed if args.seed is not None else 20160609,
            )
            _emit(
                rows,
                format_table(
                    rows, title="Figure 9a-c -- overhead surfaces (100k nodes)"
                ),
                args,
            )
            return 0
        sweep = args.sweep or "f"
        rows = run_error_rate_sweep(
            sweep,
            factors,
            n_patterns=n_pat,
            n_runs=n_runs,
            seed=args.seed if args.seed is not None else 20160610,
        )
        _emit(rows, render_error_rate_sweep(rows), args)
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
